//! Decision-trace exposition (§VI observability).
//!
//! Replays a fixed-seed control-plane scenario — 4 nodes, 6 apps × 2
//! containers, bursty CPU demand, a memory ramp that OOM-traps, 5%
//! telemetry loss, duplicates, delay spikes, and a 10–15 s partition of
//! node 1 — with every component recording into [`TraceRecorder`]s, and
//! writes three artifacts under `target/escra-results/`:
//!
//! * `<stem>.trace` — the merged, canonically ordered decision trace
//!   (one line per event);
//! * `<stem>.prom`  — Prometheus text exposition of the event counters,
//!   trap→grant latency summary, and shard queue depths;
//! * `<stem>.json`  — the same numbers as an [`ExpoSnapshot`].
//!
//! Run serial (default) or sharded (`--threads N`). The `.trace` file is
//! **byte-identical** for every thread count: per-actor event streams are
//! merged on `(time, actor)` rather than arrival order, shard-channel
//! events are excluded from the comparable dump, and the driver applies
//! drained actions in a canonical per-container order. `scripts/check.sh`
//! holds that property by diffing a serial run against `--threads 4`.

use escra_bench::SEED;
use escra_cfs::MIB;
use escra_cluster::{AppId, Cluster, ContainerId, ContainerSpec, NodeId, NodeSpec};
use escra_core::{
    Action, Agent, AgentReport, Controller, CpuStatsEntry, EscraConfig, ReclaimEntry,
    ShardedController, ToAgent, ToController, TraceRecorder,
};
use escra_metrics::trace::{kind_counts, merge_events, render_merged, TraceEvent};
use escra_metrics::{
    grant_latency_histogram, ExpoSnapshot, HistogramSummary, NamedCounter, PromText, ShardDepth,
};
use escra_net::{Addr, FaultDecision, FaultInjector, FaultPlan};
use escra_simcore::time::{SimDuration, SimTime};

const NODES: usize = 4;
const APPS: u64 = 6;
const PER_APP: u64 = 2;
const ROUNDS: u64 = 300;
const PERIOD: SimDuration = SimDuration::from_millis(100);
/// Containers cold-start for 2 s; drive telemetry only once running.
const START: SimTime = SimTime::from_millis(2_500);
/// Big enough that no recorder wraps (wraparound would break identity).
const TRACE_CAP: usize = 65_536;

/// Recorder classes: controller-side (serial Controller, shard
/// Controllers, and the sharded router) / per-node Agents / the fault
/// injector. Classes keep independent seq streams from ever being
/// compared against each other in the merge.
const CLASS_CONTROLLER: u16 = 0;
const CLASS_AGENT: u16 = 1;
const CLASS_FAULT: u16 = 2;

fn controller_addr() -> Addr {
    Addr::from_raw(0)
}

fn node_addr(node: NodeId) -> Addr {
    Addr::from_raw(1 + node.as_u64())
}

fn recorder(class: u16) -> TraceRecorder {
    TraceRecorder::with_capacity(TRACE_CAP).with_class(class)
}

/// The control plane under trace: one sequential Controller or the
/// app-sharded front-end. Decisions (and therefore the comparable trace)
/// are identical — that is the property this bin exists to demonstrate.
enum Plane {
    Serial {
        controller: Controller<TraceRecorder>,
        actions: Vec<Action>,
    },
    Sharded(ShardedController<TraceRecorder>),
}

impl Plane {
    fn new(cfg: EscraConfig, threads: usize) -> Self {
        if threads == 0 {
            Plane::Serial {
                controller: Controller::with_sink(cfg, recorder(CLASS_CONTROLLER)),
                actions: Vec::new(),
            }
        } else {
            Plane::Sharded(ShardedController::with_sinks(cfg, threads, |_| {
                recorder(CLASS_CONTROLLER)
            }))
        }
    }

    fn register_app(&mut self, app: AppId, cpu: f64, mem: u64) {
        match self {
            Plane::Serial { controller, .. } => controller.register_app(app, cpu, mem),
            Plane::Sharded(s) => s.register_app(app, cpu, mem),
        }
    }

    fn register_container(&mut self, c: ContainerId, app: AppId, node: NodeId, cpu: f64, mem: u64) {
        match self {
            Plane::Serial {
                controller,
                actions,
            } => actions.extend(
                controller
                    .register_container(c, app, node, cpu, mem)
                    .expect("register"),
            ),
            Plane::Sharded(s) => s
                .register_container(c, app, node, cpu, mem)
                .expect("register"),
        }
    }

    fn handle(&mut self, now: SimTime, msg: ToController) {
        match self {
            Plane::Serial {
                controller,
                actions,
            } => controller.handle_into(now, msg, actions),
            Plane::Sharded(s) => s.handle(now, msg),
        }
    }

    fn tick(&mut self, now: SimTime) {
        match self {
            Plane::Serial {
                controller,
                actions,
            } => actions.extend(controller.tick(now)),
            Plane::Sharded(s) => s.tick(now),
        }
    }

    fn on_reclaim_report(&mut self, now: SimTime, entries: &[ReclaimEntry]) {
        match self {
            Plane::Serial {
                controller,
                actions,
            } => actions.extend(controller.on_reclaim_report(now, entries)),
            Plane::Sharded(s) => s.on_reclaim_report(now, entries),
        }
    }

    fn drain_into(&mut self, out: &mut Vec<Action>) {
        match self {
            Plane::Serial { actions, .. } => out.append(actions),
            Plane::Sharded(s) => s.drain_actions_into(out),
        }
    }

    fn queue_depths(&self) -> Vec<u32> {
        match self {
            Plane::Serial { .. } => Vec::new(),
            Plane::Sharded(s) => s.queue_depths().to_vec(),
        }
    }

    fn finish(self) -> Vec<TraceRecorder> {
        match self {
            Plane::Serial { mut controller, .. } => {
                vec![controller.replace_sink(TraceRecorder::default())]
            }
            Plane::Sharded(mut s) => s.take_sinks(),
        }
    }
}

/// Canonical application order for one drain: stable sort keeps each
/// container's commands in emission order (the Agents' staleness
/// guarantee) while fixing the cross-container order — the sharded
/// drain concatenates per-shard buffers, so without this the serial and
/// sharded runs would apply the same multiset of commands in different
/// interleavings.
fn action_key(a: &Action) -> (u64, u64) {
    match a {
        Action::Agent { node, cmd } => match cmd {
            ToAgent::SetCpuQuota { container, .. } | ToAgent::SetMemLimit { container, .. } => {
                (0, container.as_u64())
            }
            ToAgent::ReclaimMemory { .. } => (1, node.as_u64()),
        },
        Action::KillContainer(c) => (0, c.as_u64()),
    }
}

/// Identical cluster-wide sweep commands can appear once per shard (and,
/// in a serial round, once for the periodic schedule plus once for an
/// OOM-triggered launch); the Agents must run each sweep once.
fn dedup_reclaims(actions: &mut Vec<Action>) {
    let mut seen: Vec<(NodeId, u64)> = Vec::new();
    actions.retain(|a| {
        if let Action::Agent {
            node,
            cmd: ToAgent::ReclaimMemory { delta_bytes },
        } = a
        {
            if seen.contains(&(*node, *delta_bytes)) {
                return false;
            }
            seen.push((*node, *delta_bytes));
        }
        true
    });
}

struct Args {
    threads: usize,
}

fn parse_args() -> Args {
    let mut args = Args { threads: 0 };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threads" => {
                args.threads = it
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| panic!("--threads needs a positive integer"));
            }
            other => panic!("unknown flag {other:?} (expected --threads N)"),
        }
    }
    args
}

#[allow(clippy::too_many_lines)] // one linear scenario script
fn main() {
    let args = parse_args();
    let cfg = EscraConfig::default();

    // --- Deployment: 4 nodes, 6 apps x 2 containers. ------------------
    let mut cluster = Cluster::new(vec![
        NodeSpec {
            cores: 16,
            mem_bytes: 8 << 30,
        };
        NODES
    ]);
    let mut plane = Plane::new(cfg.clone(), args.threads);
    let mut containers: Vec<ContainerId> = Vec::new();
    for a in 0..APPS {
        let app = AppId::new(a);
        plane.register_app(app, 4.0, 1024 * MIB);
        for i in 0..PER_APP {
            let spec = ContainerSpec::new(format!("a{a}c{i}"), app)
                .with_base_mem(48 * MIB)
                .with_cpu_limit(2.0)
                .with_mem_limit(96 * MIB);
            let id = cluster.deploy(spec, SimTime::ZERO).expect("deploy");
            let node = cluster.container(id).expect("deployed").node();
            plane.register_container(id, app, node, 2.0, 96 * MIB);
            containers.push(id);
        }
    }
    let mut agents: Vec<Agent> = cluster.nodes().iter().map(|n| Agent::new(n.id())).collect();
    let mut agent_recs: Vec<TraceRecorder> = (0..NODES).map(|_| recorder(CLASS_AGENT)).collect();

    // Bootstrap limits apply out-of-band (deploy-time TCP, no faults).
    let mut pending: Vec<Action> = Vec::new();
    plane.drain_into(&mut pending);
    pending.sort_by_key(action_key);
    for a in pending.drain(..) {
        if let Action::Agent { node, cmd } = a {
            let idx = node.as_u64() as usize;
            agents[idx].apply_traced(SimTime::ZERO, &mut cluster, cmd, &mut agent_recs[idx]);
        }
    }

    // --- Fault model: loss + duplication + spikes + a partition of
    // node 1 from 10 s to 15 s. -----------------------------------------
    let plan = FaultPlan::none()
        .with_loss(0.05)
        .with_duplicates(0.03)
        .with_delay_spikes(0.02, SimDuration::from_millis(200))
        .with_partition(
            controller_addr(),
            node_addr(NodeId::new(1)),
            SimTime::from_secs(10),
            SimTime::from_secs(15),
        );
    let mut faults = FaultInjector::new(plan, SEED);
    let mut fault_rec = recorder(CLASS_FAULT);

    cluster.tick(START);
    for c in &containers {
        assert!(
            cluster.container(*c).is_some_and(|c| c.is_running()),
            "scenario assumes every container is running after cold start"
        );
    }

    // --- The measured run. ---------------------------------------------
    let period_us = PERIOD.as_micros() as f64;
    let mut inbox: Vec<ToController> = Vec::new();
    for round in 0..ROUNDS {
        let now = START + PERIOD * round;
        cluster.tick(now);

        // CPU demand: each container alternates a heavy burst (throttles
        // at its quota, driving scale-ups) with a quiet phase (unused
        // runtime, driving scale-downs), phase-shifted per container.
        let mut batches: Vec<Vec<CpuStatsEntry>> = vec![Vec::new(); NODES];
        for (idx, cid) in containers.iter().enumerate() {
            let Some(c) = cluster.container(*cid) else {
                continue;
            };
            if !c.is_running() {
                continue;
            }
            let node = c.node();
            let phase = (round + idx as u64 * 5) % 40;
            let want_us = if phase < 22 {
                2.6 * period_us
            } else {
                0.15 * period_us
            };
            let c = cluster.container_mut(*cid).expect("running container");
            let cap = c.cpu.runtime_remaining_us();
            c.cpu.consume(want_us.min(cap));
            if want_us > cap {
                c.cpu.mark_throttled();
            }
            let stats = c.cpu.end_period();
            batches[node.as_u64() as usize].push(CpuStatsEntry {
                container: *cid,
                stats,
            });
        }

        // Memory demand ramps per container; a charge over the limit
        // traps as an OOM event instead of killing (§IV-B).
        for (idx, cid) in containers.iter().enumerate() {
            if !cluster.container(*cid).is_some_and(|c| c.is_running()) {
                continue;
            }
            let target = 48 * MIB + ((round * 3 + idx as u64 * 17) % 80) * MIB;
            let c = cluster.container_mut(*cid).expect("running container");
            let usage = c.mem.usage_bytes();
            if target <= usage {
                c.mem.uncharge(usage - target);
            } else if let escra_cfs::ChargeOutcome::WouldOom { shortfall_bytes } =
                c.mem.try_charge(target - usage)
            {
                inbox.push(ToController::OomEvent {
                    container: *cid,
                    shortfall_bytes,
                    current_limit_bytes: c.mem.limit_bytes(),
                });
            }
        }

        // Telemetry batches ride node -> controller through the faulty
        // fabric; a dropped datagram loses the whole node's period.
        // Spiked messages are still delivered this round — the spike is
        // traced, and same-round delivery keeps the replay independent
        // of thread scheduling.
        for (n, entries) in batches.into_iter().enumerate() {
            if entries.is_empty() {
                continue;
            }
            let node = NodeId::new(n as u64);
            let msg = ToController::CpuStatsBatch { node, entries };
            match faults.decide_traced(now, node_addr(node), controller_addr(), &mut fault_rec) {
                FaultDecision::Drop => {}
                FaultDecision::Deliver { copies, .. } => {
                    for _ in 0..copies {
                        inbox.push(msg.clone());
                    }
                }
            }
        }
        // OOM events were queued before the fault fabric; route them now
        // (their node link may be partitioned too).
        let ooms = std::mem::take(&mut inbox);
        for msg in ooms {
            match &msg {
                ToController::CpuStatsBatch { .. } => plane.handle(now, msg),
                ToController::OomEvent { container, .. } => {
                    let node = cluster.container(*container).expect("known").node();
                    match faults.decide_traced(
                        now,
                        node_addr(node),
                        controller_addr(),
                        &mut fault_rec,
                    ) {
                        FaultDecision::Drop => {}
                        FaultDecision::Deliver { copies, .. } => {
                            for _ in 0..copies {
                                plane.handle(now, msg.clone());
                            }
                        }
                    }
                }
                _ => plane.handle(now, msg),
            }
        }
        plane.tick(now);

        // Apply the round's commands in canonical order; acks and
        // reclamation reports return through the fabric.
        plane.drain_into(&mut pending);
        dedup_reclaims(&mut pending);
        pending.sort_by_key(action_key);
        let mut reclaim_entries: Vec<ReclaimEntry> = Vec::new();
        let mut report_arrived = false;
        for a in pending.drain(..) {
            match a {
                Action::Agent { node, cmd } => {
                    let nidx = node.as_u64() as usize;
                    match faults.decide_traced(
                        now,
                        controller_addr(),
                        node_addr(node),
                        &mut fault_rec,
                    ) {
                        FaultDecision::Drop => {}
                        FaultDecision::Deliver { copies, .. } => {
                            for _ in 0..copies {
                                let report = agents[nidx].apply_traced(
                                    now,
                                    &mut cluster,
                                    cmd,
                                    &mut agent_recs[nidx],
                                );
                                match report {
                                    AgentReport::Applied => {
                                        if let ToAgent::SetMemLimit { container, seq, .. } = cmd {
                                            // The ack is the RPC response;
                                            // it rides the same faulty link.
                                            if faults.decide_traced(
                                                now,
                                                node_addr(node),
                                                controller_addr(),
                                                &mut fault_rec,
                                            ) != FaultDecision::Drop
                                            {
                                                plane.handle(
                                                    now,
                                                    ToController::LimitAck { container, seq },
                                                );
                                            }
                                        }
                                    }
                                    AgentReport::Reclaimed(entries) => {
                                        if faults.decide_traced(
                                            now,
                                            node_addr(node),
                                            controller_addr(),
                                            &mut fault_rec,
                                        ) != FaultDecision::Drop
                                        {
                                            report_arrived = true;
                                            reclaim_entries.extend(entries);
                                        }
                                    }
                                    AgentReport::Stale => {}
                                }
                            }
                        }
                    }
                }
                Action::KillContainer(cid) => {
                    let _ = cluster.oom_kill(cid, now);
                }
            }
        }
        if report_arrived {
            plane.on_reclaim_report(now, &reclaim_entries);
        }
    }

    // --- Merge, render, expose. ----------------------------------------
    let depths = plane.queue_depths();
    let mut recorders = plane.finish();
    recorders.append(&mut agent_recs);
    recorders.push(fault_rec);
    let refs: Vec<&TraceRecorder> = recorders.iter().collect();
    let dropped: u64 = recorders.iter().map(|r| r.dropped()).sum();
    let emitted: u64 = recorders.iter().map(|r| r.emitted()).sum();
    assert_eq!(dropped, 0, "TRACE_CAP must hold the whole scenario");

    let trace = render_merged(&refs);
    let comparable: Vec<TraceEvent> = merge_events(&refs)
        .into_iter()
        .filter(|e| !e.kind.is_shard_channel())
        .collect();
    let counts = kind_counts(&comparable);
    assert!(
        counts.iter().any(|(l, _)| *l == "grant_issued"),
        "scenario must exercise the OOM-grant path"
    );
    let latency = grant_latency_histogram(&comparable);

    let mut prom = PromText::new();
    for (label, n) in &counts {
        prom.counter(
            &format!("escra_trace_{label}_total"),
            "Trace events of this kind in the replay.",
            *n,
        );
    }
    prom.summary(
        "escra_grant_latency_ms",
        "OOM trap to grant decision latency.",
        &latency,
    );
    prom.labeled_gauge(
        "escra_shard_queue_depth",
        "Undrained work messages per shard at run end.",
        "shard",
        &depths
            .iter()
            .enumerate()
            .map(|(s, d)| (s.to_string(), f64::from(*d)))
            .collect::<Vec<_>>(),
    );

    let snapshot = ExpoSnapshot {
        counters: counts
            .iter()
            .map(|(l, n)| NamedCounter::new(format!("trace_{l}"), *n))
            .collect(),
        shard_depths: depths
            .iter()
            .enumerate()
            .map(|(s, d)| ShardDepth {
                shard: s as u32,
                depth: *d,
            })
            .collect(),
        histograms: vec![HistogramSummary::of("grant_latency_ms", &latency)],
        trace_events: emitted,
        trace_dropped: dropped,
    };

    let stem = if args.threads == 0 {
        "trace_dump_serial".to_string()
    } else {
        format!("trace_dump_t{}", args.threads)
    };
    let dir = std::path::Path::new("target").join("escra-results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    std::fs::write(dir.join(format!("{stem}.trace")), &trace).expect("write trace");
    std::fs::write(dir.join(format!("{stem}.prom")), prom.finish()).expect("write prom");
    std::fs::write(dir.join(format!("{stem}.json")), snapshot.to_json()).expect("write json");
    eprintln!(
        "{stem}: {} comparable events ({} lines, {} emitted incl. shard-channel), wrote {}/{{{stem}.trace,.prom,.json}}",
        comparable.len(),
        trace.lines().count(),
        emitted,
        dir.display()
    );
}
