//! Regenerates the **§VI-I controller CPU overhead** analysis: how many
//! containers one Controller + Resource Allocator core can manage. Each
//! container reports once per 100 ms period, so
//! `containers/core = ingest_rate / 10`. The paper reports 1 192
//! containers per core (23 859 per 20-core node).
//!
//! The ingest rate is measured twice over identical telemetry:
//!
//! * **unbatched** — one [`ToController::CpuStats`] per container through
//!   `Controller::handle`, which allocates a fresh action vector per
//!   message (the original ingest path);
//! * **batched** — per-node entry batches through the allocation-free
//!   `Controller::ingest_cpu_batch` with caller-owned, reused buffers.
//!
//! Flags: `--smoke` shortens the run for CI; `--record` writes the
//! measured numbers to `BENCH_controller.json` at the repo root (the
//! committed baseline); `--check` fails the process if the batched rate
//! regressed more than 20% against that committed baseline or lost the
//! 2× speedup over the pre-optimisation ingest rate.

use escra_bench::write_json;
use escra_cfs::{CpuPeriodStats, MIB};
use escra_cluster::{AppId, ContainerId, NodeId};
use escra_core::telemetry::ToController;
use escra_core::{Controller, ControllerStats, CpuStatsEntry, EscraConfig};
use escra_metrics::Table;
use escra_simcore::time::SimTime;
use std::time::Instant;

/// Ingest rate of the pre-batching Controller (BTreeMap container
/// lookups, one allocation per handled message), measured on this host
/// class before the slab/batching optimisation landed — kept here so
/// `BENCH_controller.json` always carries the before/after pair.
const PRE_PR_UNBATCHED_MSGS_PER_SEC: f64 = 12_841_013.0;

/// Committed baseline written by `--record`, validated by `--check`.
const BASELINE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_controller.json");

const CONTAINERS: u64 = 1_000;
const NODES: u64 = 16;

fn setup() -> Controller {
    let mut controller = Controller::new(EscraConfig::default());
    controller.register_app(AppId::new(0), CONTAINERS as f64, CONTAINERS * 256 * MIB);
    for i in 0..CONTAINERS {
        controller
            .register_container(
                ContainerId::new(i),
                AppId::new(0),
                NodeId::new(i % NODES),
                1.0,
                200 * MIB,
            )
            .expect("register");
    }
    controller
}

/// Alternate busy/idle telemetry so both decision paths run.
fn stats_for(round: u64, i: u64) -> CpuPeriodStats {
    let throttled = (round + i) % 7 == 0;
    CpuPeriodStats {
        quota_cores: 1.0,
        usage_us: if throttled { 100_000.0 } else { 30_000.0 },
        unused_runtime_us: if throttled { 0.0 } else { 70_000.0 },
        throttled,
    }
}

/// Per-message ingest through `handle`, in node-major container order so
/// both measurements drive the shared pools identically.
fn measure_unbatched(rounds: u64) -> (f64, u64, ControllerStats) {
    let mut controller = setup();
    let mut actions = 0u64;
    let start = Instant::now();
    for round in 0..rounds {
        let now = SimTime::from_millis(round * 100);
        for node in 0..NODES {
            let mut i = node;
            while i < CONTAINERS {
                let msg = ToController::CpuStats {
                    container: ContainerId::new(i),
                    stats: stats_for(round, i),
                };
                actions += controller.handle(now, msg).len() as u64;
                i += NODES;
            }
        }
    }
    let rate = (rounds * CONTAINERS) as f64 / start.elapsed().as_secs_f64();
    (rate, actions, controller.stats())
}

/// Batched ingest: each node's entries are collected into a reused batch
/// buffer (modelling the Agent's per-period coalescing) and fed through
/// the allocation-free `ingest_cpu_batch` with a reused action buffer.
fn measure_batched(rounds: u64) -> (f64, u64, ControllerStats) {
    let mut controller = setup();
    let per_node = (CONTAINERS / NODES) as usize + 1;
    let mut batches: Vec<Vec<CpuStatsEntry>> =
        (0..NODES).map(|_| Vec::with_capacity(per_node)).collect();
    let mut out = Vec::new();
    let mut actions = 0u64;
    let start = Instant::now();
    for round in 0..rounds {
        for (node, batch) in batches.iter_mut().enumerate() {
            batch.clear();
            let mut i = node as u64;
            while i < CONTAINERS {
                batch.push(CpuStatsEntry {
                    container: ContainerId::new(i),
                    stats: stats_for(round, i),
                });
                i += NODES;
            }
            controller.ingest_cpu_batch(batch, &mut out);
            actions += out.len() as u64;
            out.clear();
        }
    }
    let rate = (rounds * CONTAINERS) as f64 / start.elapsed().as_secs_f64();
    (rate, actions, controller.stats())
}

/// Minimal JSON number extraction: the vendored serde_json shim only
/// serializes, so the committed baseline is read back by string search.
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\"");
    let at = json.find(&pat)?;
    let rest = &json[at + pat.len()..];
    let rest = &rest[rest.find(':')? + 1..];
    let end = rest
        .find(|c| c == ',' || c == '}' || c == '\n')
        .unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn render_json(unbatched: f64, batched: f64) -> String {
    let per_core = batched / 10.0;
    format!(
        "{{\n  \"pre_pr_unbatched_msgs_per_sec\": {PRE_PR_UNBATCHED_MSGS_PER_SEC:.0},\n  \
         \"unbatched_msgs_per_sec\": {unbatched:.0},\n  \
         \"batched_entries_per_sec\": {batched:.0},\n  \
         \"speedup_vs_pre_pr\": {:.2},\n  \
         \"containers_per_core\": {per_core:.0},\n  \
         \"containers_per_20core_node\": {:.0}\n}}\n",
        batched / PRE_PR_UNBATCHED_MSGS_PER_SEC,
        per_core * 20.0,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    let record = args.iter().any(|a| a == "--record");
    let rounds = if smoke { 40 } else { 200 };

    let (unbatched_rate, actions_a, stats_a) = measure_unbatched(rounds);
    let (batched_rate, actions_b, stats_b) = measure_batched(rounds);
    assert_eq!(
        stats_a, stats_b,
        "batched and per-message ingest must make identical decisions"
    );
    assert_eq!(actions_a, actions_b);

    let msgs = (rounds * CONTAINERS) as f64;
    let per_core = batched_rate / 10.0; // each container reports at 10 Hz

    let mut table = Table::new(vec!["metric", "value"]);
    table.row(vec![
        "telemetry entries processed (each path)".into(),
        format!("{msgs:.0}"),
    ]);
    table.row(vec!["actions emitted".into(), format!("{actions_b}")]);
    table.row(vec![
        "unbatched ingest rate (msg/s/core)".into(),
        format!("{unbatched_rate:.0}"),
    ]);
    table.row(vec![
        "batched ingest rate (entries/s/core)".into(),
        format!("{batched_rate:.0}"),
    ]);
    table.row(vec![
        "pre-optimisation baseline (msg/s/core)".into(),
        format!("{PRE_PR_UNBATCHED_MSGS_PER_SEC:.0}"),
    ]);
    table.row(vec![
        "speedup vs pre-optimisation".into(),
        format!("{:.2}x", batched_rate / PRE_PR_UNBATCHED_MSGS_PER_SEC),
    ]);
    table.row(vec![
        "containers manageable per core".into(),
        format!("{per_core:.0}"),
    ]);
    table.row(vec![
        "containers per 20-core node".into(),
        format!("{:.0}", per_core * 20.0),
    ]);
    println!("Escra Controller + Resource Allocator capacity (host-clock microbenchmark)");
    println!("{}", table.render());
    println!("(paper: 1 192 containers/core, 23 859 per 20-core node — without the");
    println!(" cAdvisor-based reclamation path, which they call out as replaceable)");

    let json = render_json(unbatched_rate, batched_rate);
    let path = write_json("overhead_controller", &json);
    println!("numbers written to {}", path.display());

    if record {
        std::fs::write(BASELINE_PATH, &json).expect("write committed baseline");
        println!("committed baseline recorded to {BASELINE_PATH}");
    }
    if check {
        let committed = std::fs::read_to_string(BASELINE_PATH)
            .unwrap_or_else(|e| panic!("read {BASELINE_PATH}: {e} (run with --record first)"));
        let committed_batched = extract_number(&committed, "batched_entries_per_sec")
            .expect("baseline has batched_entries_per_sec");
        let committed_pre = extract_number(&committed, "pre_pr_unbatched_msgs_per_sec")
            .unwrap_or(PRE_PR_UNBATCHED_MSGS_PER_SEC);
        println!(
            "check: batched {batched_rate:.0} entries/s vs committed {committed_batched:.0} \
             (floor {:.0}), pre-optimisation {committed_pre:.0} (2x floor {:.0})",
            0.8 * committed_batched,
            2.0 * committed_pre,
        );
        if batched_rate < 0.8 * committed_batched {
            eprintln!(
                "FAIL: batched ingest rate regressed >20% vs committed baseline \
                 ({batched_rate:.0} < 0.8 * {committed_batched:.0})"
            );
            std::process::exit(1);
        }
        if batched_rate < 2.0 * committed_pre {
            eprintln!(
                "FAIL: batched ingest rate lost the 2x speedup over the \
                 pre-optimisation baseline ({batched_rate:.0} < 2 * {committed_pre:.0})"
            );
            std::process::exit(1);
        }
        println!("check: OK");
    }
}
