//! Regenerates the **§VI-I controller CPU overhead** analysis: how many
//! containers one Controller + Resource Allocator core can manage. Each
//! container reports once per 100 ms period, so
//! `containers/core = ingest_rate / 10`. The paper reports 1 192
//! containers per core (23 859 per 20-core node).

use escra_bench::write_json;
use escra_cfs::{CpuPeriodStats, MIB};
use escra_cluster::{AppId, ContainerId, NodeId};
use escra_core::telemetry::ToController;
use escra_core::{Controller, EscraConfig};
use escra_metrics::{to_json, Table};
use escra_simcore::time::SimTime;
use std::time::Instant;

fn main() {
    let containers = 1_000u64;
    let mut controller = Controller::new(EscraConfig::default());
    controller.register_app(AppId::new(0), containers as f64, containers * 256 * MIB);
    for i in 0..containers {
        controller
            .register_container(
                ContainerId::new(i),
                AppId::new(0),
                NodeId::new(i % 16),
                1.0,
                200 * MIB,
            )
            .expect("register");
    }

    // Alternate busy/idle telemetry so both decision paths run.
    let stats = |throttled: bool| CpuPeriodStats {
        quota_cores: 1.0,
        usage_us: if throttled { 100_000.0 } else { 30_000.0 },
        unused_runtime_us: if throttled { 0.0 } else { 70_000.0 },
        throttled,
    };
    let rounds = 200u64;
    let start = Instant::now();
    let mut actions = 0u64;
    for round in 0..rounds {
        for i in 0..containers {
            let msg = ToController::CpuStats {
                container: ContainerId::new(i),
                stats: stats((round + i) % 7 == 0),
            };
            actions += controller
                .handle(SimTime::from_millis(round * 100), msg)
                .len() as u64;
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    let msgs = (rounds * containers) as f64;
    let rate = msgs / elapsed;
    let per_core = rate / 10.0; // each container reports at 10 Hz

    let mut table = Table::new(vec!["metric", "value"]);
    table.row(vec![
        "telemetry messages processed".into(),
        format!("{msgs:.0}"),
    ]);
    table.row(vec!["actions emitted".into(), format!("{actions}")]);
    table.row(vec![
        "ingest rate (msg/s/core)".into(),
        format!("{rate:.0}"),
    ]);
    table.row(vec![
        "containers manageable per core".into(),
        format!("{per_core:.0}"),
    ]);
    table.row(vec![
        "containers per 20-core node".into(),
        format!("{:.0}", per_core * 20.0),
    ]);
    println!("Escra Controller + Resource Allocator capacity (host-clock microbenchmark)");
    println!("{}", table.render());
    println!("(paper: 1 192 containers/core, 23 859 per 20-core node — without the");
    println!(" cAdvisor-based reclamation path, which they call out as replaceable)");
    let path = write_json(
        "overhead_controller",
        &to_json(&(rate, per_core, per_core * 20.0)),
    );
    println!("numbers written to {}", path.display());
}
