//! Regenerates the **§VI-I controller CPU overhead** analysis: how many
//! containers one Controller + Resource Allocator core can manage. Each
//! container reports once per 100 ms period, so
//! `containers/core = ingest_rate / 10`. The paper reports 1 192
//! containers per core (23 859 per 20-core node).
//!
//! The ingest rate is measured twice over identical telemetry:
//!
//! * **unbatched** — one [`ToController::CpuStats`] per container through
//!   `Controller::handle`, which allocates a fresh action vector per
//!   message (the original ingest path);
//! * **batched** — per-node entry batches through the allocation-free
//!   `Controller::ingest_cpu_batch` with caller-owned, reused buffers.
//!
//! A third measurement drives the same telemetry through the
//! **app-sharded** [`ShardedController`] at 1/2/4/8 worker threads
//! (a 64-app registry, since sharding is by application). Its rate is
//! the *per-shard critical path*: total entries divided by the largest
//! per-shard CPU time spent inside batch ingest. On a machine with one
//! core per shard that quotient equals wall-clock throughput; on
//! core-starved CI hosts it still measures the parallel speedup honestly
//! where wall-clock cannot.
//!
//! A fourth measurement (`--columnar`) drives the same telemetry in the
//! struct-of-arrays `CpuStatsColumns` wire form through the
//! SIMD-or-scalar `ingest_cpu_columns` path, single-core and sharded,
//! asserting along the way that the columnar, forced-scalar columnar,
//! and row-batched paths make byte-identical decisions; the JSON
//! records which kernel (`avx2`/`scalar`) the auto dispatch took.
//!
//! Flags: `--smoke` shortens the run for CI; `--threads N` measures the
//! sharded path at one worker count only (columnar with `--columnar`);
//! `--record` writes the measured numbers to `BENCH_controller.json` at
//! the repo root (the committed baseline); `--check` fails the process
//! if the batched or columnar rate regressed more than 20% against that
//! committed baseline, the batched rate lost the 2× speedup over the
//! pre-optimisation ingest rate, or the sharded path lost its 2.5×
//! 4-thread-vs-1-thread scaling.

use escra_bench::write_json;
use escra_cfs::{CpuPeriodStats, MIB};
use escra_cluster::{AppId, ContainerId, NodeId};
use escra_core::columnar::{active_path, set_force_scalar};
use escra_core::telemetry::ToController;
use escra_core::{
    Controller, ControllerStats, CpuStatsColumns, CpuStatsEntry, EscraConfig, ShardedController,
};
use escra_metrics::Table;
use escra_simcore::time::SimTime;
use std::time::Instant;

/// Ingest rate of the pre-batching Controller (BTreeMap container
/// lookups, one allocation per handled message), measured on this host
/// class before the slab/batching optimisation landed — kept here so
/// `BENCH_controller.json` always carries the before/after pair.
const PRE_PR_UNBATCHED_MSGS_PER_SEC: f64 = 12_841_013.0;

/// Committed baseline written by `--record`, validated by `--check`.
const BASELINE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_controller.json");

const CONTAINERS: u64 = 1_000;
const NODES: u64 = 16;
/// Applications in the sharded setup: enough to balance any shard count
/// in the curve (sharding is by app id, so one app cannot scale).
const APPS: u64 = 64;
/// The scaling curve recorded into `BENCH_controller.json`.
const CURVE_THREADS: [usize; 4] = [1, 2, 4, 8];
/// Best-of-N trials per sharded point, to shrug off scheduler noise on
/// shared hosts (busy-time can only be over-counted, never under-).
const SHARDED_TRIALS: usize = 3;

fn setup() -> Controller {
    let mut controller = Controller::new(EscraConfig::default());
    controller.register_app(AppId::new(0), CONTAINERS as f64, CONTAINERS * 256 * MIB);
    for i in 0..CONTAINERS {
        controller
            .register_container(
                ContainerId::new(i),
                AppId::new(0),
                NodeId::new(i % NODES),
                1.0,
                200 * MIB,
            )
            .expect("register");
    }
    controller
}

/// Alternate busy/idle telemetry so both decision paths run.
fn stats_for(round: u64, i: u64) -> CpuPeriodStats {
    let throttled = (round + i) % 7 == 0;
    CpuPeriodStats {
        quota_cores: 1.0,
        usage_us: if throttled { 100_000.0 } else { 30_000.0 },
        unused_runtime_us: if throttled { 0.0 } else { 70_000.0 },
        throttled,
    }
}

/// Per-message ingest through `handle`, in node-major container order so
/// both measurements drive the shared pools identically.
fn measure_unbatched(rounds: u64) -> (f64, u64, ControllerStats) {
    let mut controller = setup();
    let mut actions = 0u64;
    let start = Instant::now();
    for round in 0..rounds {
        let now = SimTime::from_millis(round * 100);
        for node in 0..NODES {
            let mut i = node;
            while i < CONTAINERS {
                let msg = ToController::CpuStats {
                    container: ContainerId::new(i),
                    stats: stats_for(round, i),
                };
                actions += controller.handle(now, msg).len() as u64;
                i += NODES;
            }
        }
    }
    let rate = (rounds * CONTAINERS) as f64 / start.elapsed().as_secs_f64();
    (rate, actions, controller.stats())
}

/// Batched ingest: each node's entries are collected into a reused batch
/// buffer (modelling the Agent's per-period coalescing) and fed through
/// the allocation-free `ingest_cpu_batch` with a reused action buffer.
fn measure_batched(rounds: u64) -> (f64, u64, ControllerStats) {
    let mut controller = setup();
    let per_node = (CONTAINERS / NODES) as usize + 1;
    let mut batches: Vec<Vec<CpuStatsEntry>> =
        (0..NODES).map(|_| Vec::with_capacity(per_node)).collect();
    let mut out = Vec::new();
    let mut actions = 0u64;
    let start = Instant::now();
    for round in 0..rounds {
        for (node, batch) in batches.iter_mut().enumerate() {
            batch.clear();
            let mut i = node as u64;
            while i < CONTAINERS {
                batch.push(CpuStatsEntry {
                    container: ContainerId::new(i),
                    stats: stats_for(round, i),
                });
                i += NODES;
            }
            controller.ingest_cpu_batch(batch, &mut out);
            actions += out.len() as u64;
            out.clear();
        }
    }
    let rate = (rounds * CONTAINERS) as f64 / start.elapsed().as_secs_f64();
    (rate, actions, controller.stats())
}

/// Columnar ingest: the same telemetry as [`measure_batched`], packed
/// into per-node struct-of-arrays blocks and fed through the
/// SIMD-or-scalar `Controller::ingest_cpu_columns`. The blocks are
/// built *outside* the timed loop: fixed-point quantization is
/// Agent-side work (the wire carries the columns already encoded), so
/// the timed section covers exactly what the Controller core pays —
/// just as the row paths' in-loop struct pushes stand in for reading
/// rows off the wire. The bench telemetry values are exactly
/// representable in the fixed-point columns, so the decisions
/// (asserted by the caller) are identical to the row paths.
fn measure_columnar(rounds: u64) -> (f64, u64, ControllerStats) {
    let mut controller = setup();
    let per_node = (CONTAINERS / NODES) as usize + 1;
    let mut blocks: Vec<CpuStatsColumns> = Vec::with_capacity((rounds * NODES) as usize);
    for round in 0..rounds {
        for node in 0..NODES {
            let mut block = CpuStatsColumns::new();
            block.reserve(per_node);
            let mut i = node;
            while i < CONTAINERS {
                block.push(ContainerId::new(i), &stats_for(round, i));
                i += NODES;
            }
            blocks.push(block);
        }
    }
    let mut out = Vec::new();
    let mut actions = 0u64;
    let start = Instant::now();
    for block in &blocks {
        controller.ingest_cpu_columns(block, &mut out);
        actions += out.len() as u64;
        out.clear();
    }
    let rate = (rounds * CONTAINERS) as f64 / start.elapsed().as_secs_f64();
    (rate, actions, controller.stats())
}

/// The sharded registry spreads the same container population over
/// [`APPS`] applications so every shard count in the curve gets a
/// balanced partition.
fn setup_sharded(threads: usize) -> ShardedController {
    let mut sharded = ShardedController::new(EscraConfig::default(), threads);
    let per_app = CONTAINERS / APPS;
    for a in 0..APPS {
        sharded.register_app(
            AppId::new(a),
            (per_app + 1) as f64 * 2.0,
            (per_app + 1) * 512 * MIB,
        );
    }
    for i in 0..CONTAINERS {
        sharded
            .register_container(
                ContainerId::new(i),
                AppId::new(i % APPS),
                NodeId::new(i % NODES),
                1.0,
                200 * MIB,
            )
            .expect("register");
    }
    sharded
}

/// One sharded trial: the same per-node batches as [`measure_batched`],
/// fanned out by the router, drained every round. Returns the
/// critical-path rate (total entries / max per-shard ingest CPU time),
/// the actions drained, and the merged stats.
fn sharded_trial(rounds: u64, threads: usize) -> (f64, u64, ControllerStats) {
    let mut sharded = setup_sharded(threads);
    let mut out = Vec::new();
    sharded.drain_actions_into(&mut out); // discard registration bootstrap
    out.clear();
    let per_node = (CONTAINERS / NODES) as usize + 1;
    let mut batch: Vec<CpuStatsEntry> = Vec::with_capacity(per_node);
    let mut actions = 0u64;
    for round in 0..rounds {
        for node in 0..NODES {
            batch.clear();
            let mut i = node;
            while i < CONTAINERS {
                batch.push(CpuStatsEntry {
                    container: ContainerId::new(i),
                    stats: stats_for(round, i),
                });
                i += NODES;
            }
            sharded.ingest_cpu_batch(&batch);
        }
        sharded.drain_actions_into(&mut out);
        actions += out.len() as u64;
        out.clear();
    }
    let critical_path = sharded
        .ingest_busy_per_shard()
        .into_iter()
        .max()
        .expect("at least one shard");
    let rate = (rounds * CONTAINERS) as f64 / critical_path.as_secs_f64();
    (rate, actions, sharded.stats())
}

/// One sharded *columnar* trial: the same per-node telemetry packed
/// into one reused column block per send, routed by
/// `ShardedController::ingest_cpu_columns` into recycled per-shard
/// sub-blocks over the SPSC rings. Rate is the same critical-path
/// quotient as [`sharded_trial`].
fn sharded_columnar_trial(rounds: u64, threads: usize) -> (f64, u64, ControllerStats) {
    let mut sharded = setup_sharded(threads);
    let mut out = Vec::new();
    sharded.drain_actions_into(&mut out); // discard registration bootstrap
    out.clear();
    let per_node = (CONTAINERS / NODES) as usize + 1;
    let mut block = CpuStatsColumns::new();
    block.reserve(per_node);
    let mut actions = 0u64;
    for round in 0..rounds {
        for node in 0..NODES {
            block.clear();
            let mut i = node;
            while i < CONTAINERS {
                block.push(ContainerId::new(i), &stats_for(round, i));
                i += NODES;
            }
            sharded.ingest_cpu_columns(&block);
        }
        sharded.drain_actions_into(&mut out);
        actions += out.len() as u64;
        out.clear();
    }
    let critical_path = sharded
        .ingest_busy_per_shard()
        .into_iter()
        .max()
        .expect("at least one shard");
    let rate = (rounds * CONTAINERS) as f64 / critical_path.as_secs_f64();
    (rate, actions, sharded.stats())
}

/// Best-of-[`SHARDED_TRIALS`] over any trial flavour. The single-core
/// paths need this as much as the sharded ones: a full-length trial is
/// only a few milliseconds of wall clock, so a single scheduler
/// preemption inside the window halves the measured rate.
fn best_of(mut trial: impl FnMut() -> (f64, u64, ControllerStats)) -> (f64, u64, ControllerStats) {
    let mut best = 0.0f64;
    let mut last = None;
    for _ in 0..SHARDED_TRIALS {
        let (rate, actions, stats) = trial();
        best = best.max(rate);
        last = Some((actions, stats));
    }
    let (actions, stats) = last.expect("at least one trial");
    (best, actions, stats)
}

fn measure_sharded(rounds: u64, threads: usize) -> (f64, u64, ControllerStats) {
    best_of(|| sharded_trial(rounds, threads))
}

fn measure_sharded_columnar(rounds: u64, threads: usize) -> (f64, u64, ControllerStats) {
    best_of(|| sharded_columnar_trial(rounds, threads))
}

/// Minimal JSON number extraction: the vendored serde_json shim only
/// serializes, so the committed baseline is read back by string search.
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\"");
    let at = json.find(&pat)?;
    let rest = &json[at + pat.len()..];
    let rest = &rest[rest.find(':')? + 1..];
    let end = rest
        .find(|c| c == ',' || c == '}' || c == '\n')
        .unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// The columnar half of the measurement suite (present when the bench
/// runs with `--columnar`).
struct ColumnarNumbers {
    /// Single-core columnar ingest rate, auto-dispatched kernel.
    rate: f64,
    /// Single-core columnar ingest rate with the scalar kernel forced.
    scalar_rate: f64,
    /// Which kernel the auto dispatch took (`"avx2"` / `"scalar"`).
    path: &'static str,
    /// Sharded columnar scaling curve (threads, entries/s).
    curve: Vec<(usize, f64)>,
}

fn render_json(
    unbatched: f64,
    batched: f64,
    curve: &[(usize, f64)],
    columnar: Option<&ColumnarNumbers>,
) -> String {
    let per_core = batched / 10.0;
    let curve_json = curve
        .iter()
        .map(|(t, rate)| format!("    \"t{t}\": {rate:.0}"))
        .collect::<Vec<_>>()
        .join(",\n");
    let t1 = curve.first().map(|&(_, r)| r).unwrap_or(0.0);
    let t4 = curve
        .iter()
        .find(|&&(t, _)| t == 4)
        .map(|&(_, r)| r)
        .unwrap_or(0.0);
    // The columnar keys are prefixed (`columnar_t8`, not a nested `t8`)
    // so the string-searching `extract_number` can never confuse the
    // row and columnar curves.
    let columnar_json = columnar
        .map(|c| {
            let col_curve = c
                .curve
                .iter()
                .map(|(t, rate)| format!("    \"columnar_t{t}\": {rate:.0}"))
                .collect::<Vec<_>>()
                .join(",\n");
            format!(
                ",\n  \"columnar_entries_per_sec\": {:.0},\n  \
                 \"columnar_scalar_entries_per_sec\": {:.0},\n  \
                 \"columnar_path\": \"{}\",\n  \
                 \"columnar_speedup_vs_batched\": {:.2},\n  \
                 \"columnar_sharded_entries_per_sec_by_threads\": {{\n{}\n  }}",
                c.rate,
                c.scalar_rate,
                c.path,
                if batched > 0.0 { c.rate / batched } else { 0.0 },
                col_curve,
            )
        })
        .unwrap_or_default();
    format!(
        "{{\n  \"pre_pr_unbatched_msgs_per_sec\": {PRE_PR_UNBATCHED_MSGS_PER_SEC:.0},\n  \
         \"unbatched_msgs_per_sec\": {unbatched:.0},\n  \
         \"batched_entries_per_sec\": {batched:.0},\n  \
         \"speedup_vs_pre_pr\": {:.2},\n  \
         \"containers_per_core\": {per_core:.0},\n  \
         \"containers_per_20core_node\": {:.0},\n  \
         \"sharded_entries_per_sec_by_threads\": {{\n{curve_json}\n  }},\n  \
         \"sharded_speedup_4t_vs_1t\": {:.2}{columnar_json}\n}}\n",
        batched / PRE_PR_UNBATCHED_MSGS_PER_SEC,
        per_core * 20.0,
        if t1 > 0.0 { t4 / t1 } else { 0.0 },
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    let record = args.iter().any(|a| a == "--record");
    let columnar = args.iter().any(|a| a == "--columnar");
    let only_threads = args.iter().position(|a| a == "--threads").map(|at| {
        args.get(at + 1)
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| panic!("--threads needs a positive integer"))
    });
    let rounds = if smoke { 40 } else { 200 };
    let sharded_rounds = if smoke { 100 } else { 400 };

    if let Some(threads) = only_threads {
        // Single-point sharded mode: no baseline bookkeeping, just the
        // capacity of one worker-count configuration. `--record`/`--check`
        // need the whole curve, so they fall through to the full suite.
        let (rate, actions, stats) = if columnar {
            measure_sharded_columnar(sharded_rounds, threads)
        } else {
            measure_sharded(sharded_rounds, threads)
        };
        println!(
            "{}sharded ingest, {threads} thread(s): {rate:.0} entries/s \
             (critical path), {actions} actions, {} entries ingested",
            if columnar { "columnar " } else { "" },
            stats.cpu_stats_ingested
        );
        if !record && !check {
            return;
        }
    }

    let (unbatched_rate, actions_a, stats_a) = best_of(|| measure_unbatched(rounds));
    let (batched_rate, actions_b, stats_b) = best_of(|| measure_batched(rounds));
    assert_eq!(
        stats_a, stats_b,
        "batched and per-message ingest must make identical decisions"
    );
    assert_eq!(actions_a, actions_b);

    let columnar_numbers = columnar.then(|| {
        // Auto-dispatched kernel (AVX2 where the host has it), honouring
        // the ESCRA_FORCE_SCALAR env knob: a forced-scalar run measures
        // and records the scalar kernel as the active path.
        let path = active_path();
        let (rate, actions_c, stats_c) = best_of(|| measure_columnar(rounds));
        assert_eq!(
            (actions_c, &stats_c),
            (actions_b, &stats_b),
            "columnar and batched ingest must make identical decisions"
        );
        // Scalar fallback, forced even on SIMD-capable hosts: same
        // telemetry, and the decisions must again be identical — the
        // dispatch is a speed choice, never a behaviour choice.
        set_force_scalar(true);
        assert_eq!(active_path(), "scalar");
        let (scalar_rate, actions_s, stats_s) = best_of(|| measure_columnar(rounds));
        set_force_scalar(path == "scalar");
        assert_eq!(
            (actions_s, &stats_s),
            (actions_b, &stats_b),
            "forced-scalar columnar ingest must make identical decisions"
        );
        ColumnarNumbers {
            rate,
            scalar_rate,
            path,
            curve: Vec::new(),
        }
    });

    // The sharded scaling curve. Decisions must not depend on the shard
    // count: every point's merged stats and drained action count must
    // match the 1-shard run exactly.
    let mut curve: Vec<(usize, f64)> = Vec::new();
    let mut sharded_ref: Option<(u64, ControllerStats)> = None;
    for threads in CURVE_THREADS {
        let (rate, actions, stats) = measure_sharded(sharded_rounds, threads);
        match &sharded_ref {
            None => sharded_ref = Some((actions, stats)),
            Some((ref_actions, ref_stats)) => {
                assert_eq!(
                    (actions, &stats),
                    (*ref_actions, ref_stats),
                    "sharding must not change decisions ({threads} threads)"
                );
            }
        }
        curve.push((threads, rate));
    }

    // The columnar scaling curve: same registry, same telemetry, same
    // decision assertions against the 1-shard row reference.
    let columnar_numbers = columnar_numbers.map(|mut c| {
        for threads in CURVE_THREADS {
            let (rate, actions, stats) = measure_sharded_columnar(sharded_rounds, threads);
            let (ref_actions, ref_stats) = sharded_ref.as_ref().expect("row curve ran first");
            assert_eq!(
                (actions, &stats),
                (*ref_actions, ref_stats),
                "columnar sharding must not change decisions ({threads} threads)"
            );
            c.curve.push((threads, rate));
        }
        c
    });

    let msgs = (rounds * CONTAINERS) as f64;
    let per_core = batched_rate / 10.0; // each container reports at 10 Hz

    let mut table = Table::new(vec!["metric", "value"]);
    table.row(vec![
        "telemetry entries processed (each path)".into(),
        format!("{msgs:.0}"),
    ]);
    table.row(vec!["actions emitted".into(), format!("{actions_b}")]);
    table.row(vec![
        "unbatched ingest rate (msg/s/core)".into(),
        format!("{unbatched_rate:.0}"),
    ]);
    table.row(vec![
        "batched ingest rate (entries/s/core)".into(),
        format!("{batched_rate:.0}"),
    ]);
    table.row(vec![
        "pre-optimisation baseline (msg/s/core)".into(),
        format!("{PRE_PR_UNBATCHED_MSGS_PER_SEC:.0}"),
    ]);
    table.row(vec![
        "speedup vs pre-optimisation".into(),
        format!("{:.2}x", batched_rate / PRE_PR_UNBATCHED_MSGS_PER_SEC),
    ]);
    table.row(vec![
        "containers manageable per core".into(),
        format!("{per_core:.0}"),
    ]);
    table.row(vec![
        "containers per 20-core node".into(),
        format!("{:.0}", per_core * 20.0),
    ]);
    let curve_t1 = curve[0].1;
    for &(threads, rate) in &curve {
        table.row(vec![
            format!("sharded ingest rate, {threads} thread(s) (entries/s)"),
            format!("{rate:.0} ({:.2}x vs 1 thread)", rate / curve_t1),
        ]);
    }
    if let Some(c) = &columnar_numbers {
        table.row(vec![
            format!("columnar ingest rate, {} kernel (entries/s/core)", c.path),
            format!("{:.0} ({:.2}x vs batched)", c.rate, c.rate / batched_rate),
        ]);
        table.row(vec![
            "columnar ingest rate, forced scalar (entries/s/core)".into(),
            format!("{:.0}", c.scalar_rate),
        ]);
        for &(threads, rate) in &c.curve {
            table.row(vec![
                format!("columnar sharded ingest rate, {threads} thread(s) (entries/s)"),
                format!("{rate:.0} ({:.2}x vs 1 thread)", rate / c.curve[0].1),
            ]);
        }
    }
    println!("Escra Controller + Resource Allocator capacity (host-clock microbenchmark)");
    println!("{}", table.render());
    println!("(paper: 1 192 containers/core, 23 859 per 20-core node — without the");
    println!(" cAdvisor-based reclamation path, which they call out as replaceable;");
    println!(" sharded rates are per-shard critical-path: entries / max shard CPU time)");

    let json = render_json(
        unbatched_rate,
        batched_rate,
        &curve,
        columnar_numbers.as_ref(),
    );
    let path = write_json("overhead_controller", &json);
    println!("numbers written to {}", path.display());

    if record {
        std::fs::write(BASELINE_PATH, &json).expect("write committed baseline");
        println!("committed baseline recorded to {BASELINE_PATH}");
    }
    if check {
        let committed = std::fs::read_to_string(BASELINE_PATH)
            .unwrap_or_else(|e| panic!("read {BASELINE_PATH}: {e} (run with --record first)"));
        let committed_batched = extract_number(&committed, "batched_entries_per_sec")
            .expect("baseline has batched_entries_per_sec");
        let committed_pre = extract_number(&committed, "pre_pr_unbatched_msgs_per_sec")
            .unwrap_or(PRE_PR_UNBATCHED_MSGS_PER_SEC);
        println!(
            "check: batched {batched_rate:.0} entries/s vs committed {committed_batched:.0} \
             (floor {:.0}), pre-optimisation {committed_pre:.0} (2x floor {:.0})",
            0.8 * committed_batched,
            2.0 * committed_pre,
        );
        if batched_rate < 0.8 * committed_batched {
            eprintln!(
                "FAIL: batched ingest rate regressed >20% vs committed baseline \
                 ({batched_rate:.0} < 0.8 * {committed_batched:.0})"
            );
            std::process::exit(1);
        }
        if batched_rate < 2.0 * committed_pre {
            eprintln!(
                "FAIL: batched ingest rate lost the 2x speedup over the \
                 pre-optimisation baseline ({batched_rate:.0} < 2 * {committed_pre:.0})"
            );
            std::process::exit(1);
        }
        let t1 = curve[0].1;
        let t4 = curve
            .iter()
            .find(|&&(t, _)| t == 4)
            .map(|&(_, r)| r)
            .expect("curve has a 4-thread point");
        println!(
            "check: sharded t4 {t4:.0} vs t1 {t1:.0} ({:.2}x, floor 2.5x)",
            t4 / t1
        );
        if t4 < 2.5 * t1 {
            eprintln!(
                "FAIL: sharded ingest lost its 4-thread scaling \
                 ({t4:.0} < 2.5 * {t1:.0})"
            );
            std::process::exit(1);
        }
        // The absolute sharded floor only applies to full-length runs:
        // smoke's shorter rounds shrink per-shard batches, so fixed
        // timer overhead depresses the absolute rate (the scaling ratio
        // above is the smoke-safe gate).
        if let Some(committed_t4) = extract_number(&committed, "t4").filter(|_| !smoke) {
            println!(
                "check: sharded t4 {t4:.0} vs committed {committed_t4:.0} (floor {:.0})",
                0.8 * committed_t4
            );
            if t4 < 0.8 * committed_t4 {
                eprintln!(
                    "FAIL: sharded 4-thread ingest rate regressed >20% vs committed \
                     baseline ({t4:.0} < 0.8 * {committed_t4:.0})"
                );
                std::process::exit(1);
            }
        }
        if let Some(c) = &columnar_numbers {
            match extract_number(&committed, "columnar_entries_per_sec") {
                Some(committed_col) => {
                    println!(
                        "check: columnar {:.0} entries/s vs committed {committed_col:.0} \
                         (floor {:.0}, {} kernel, scalar fallback decision-identical)",
                        c.rate,
                        0.8 * committed_col,
                        c.path,
                    );
                    if c.rate < 0.8 * committed_col {
                        eprintln!(
                            "FAIL: columnar ingest rate regressed >20% vs committed \
                             baseline ({:.0} < 0.8 * {committed_col:.0})",
                            c.rate
                        );
                        std::process::exit(1);
                    }
                }
                None => println!(
                    "check: committed baseline has no columnar numbers yet \
                     (run --columnar --record to add them)"
                ),
            }
            let col_t8 = c
                .curve
                .iter()
                .find(|&&(t, _)| t == 8)
                .map(|&(_, r)| r)
                .expect("columnar curve has an 8-thread point");
            if let Some(committed_col_t8) =
                extract_number(&committed, "columnar_t8").filter(|_| !smoke)
            {
                println!(
                    "check: columnar t8 {col_t8:.0} vs committed {committed_col_t8:.0} \
                     (floor {:.0})",
                    0.8 * committed_col_t8
                );
                if col_t8 < 0.8 * committed_col_t8 {
                    eprintln!(
                        "FAIL: columnar 8-thread ingest rate regressed >20% vs committed \
                         baseline ({col_t8:.0} < 0.8 * {committed_col_t8:.0})"
                    );
                    std::process::exit(1);
                }
            }
        }
        println!("check: OK");
    }
}
