//! # escra-bench
//!
//! The benchmark harness that regenerates **every table and figure** of
//! the paper's evaluation. Each artifact has a dedicated binary (see the
//! experiment index in `DESIGN.md`); this library holds the shared
//! experiment-matrix runner so Figs. 4–6 and Table I reuse one set of
//! runs.
//!
//! Run any artifact with, e.g.:
//!
//! ```text
//! cargo run -p escra-bench --release --bin table1_summary
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use escra_harness::sweep::{default_threads, run_serial, run_sweep, scenarios, Scenario};
use escra_harness::{profile_run, run_with_profiles, MicroSimConfig, Policy};
use escra_metrics::RunMetrics;
use escra_simcore::time::SimDuration;
use escra_workloads::{
    alibaba_workload, hipster_shop, media_microservice, teastore, train_ticket, MicroserviceApp,
    WorkloadKind,
};

/// Default measured duration of one microservice run.
pub const RUN_SECS: u64 = 60;
/// Shortened run used by `--smoke` (CI identity checks, not artifacts).
pub const SMOKE_RUN_SECS: u64 = 8;
/// Default master seed for the experiment matrix.
pub const SEED: u64 = 20220701;

/// Command-line options shared by the sweep-runner figure binaries.
#[derive(Debug, Clone, Copy)]
pub struct SweepArgs {
    /// `--smoke`: run with [`SMOKE_RUN_SECS`] instead of [`RUN_SECS`].
    pub smoke: bool,
    /// `--serial`: re-run the grid serially and assert the serialized
    /// results are byte-identical to the parallel run (the CI gate).
    pub serial_check: bool,
    /// `--threads N`: sweep worker count (defaults to
    /// [`default_threads`]).
    pub threads: usize,
}

impl SweepArgs {
    /// The per-run duration these options select.
    pub fn duration_secs(&self) -> u64 {
        if self.smoke {
            SMOKE_RUN_SECS
        } else {
            RUN_SECS
        }
    }
}

/// Parses `--smoke`, `--serial`, and `--threads N` from `std::env::args`.
///
/// # Panics
///
/// Panics on unknown flags or a malformed `--threads` value, printing
/// the offending argument.
pub fn parse_sweep_args() -> SweepArgs {
    let mut args = SweepArgs {
        smoke: false,
        serial_check: false,
        threads: default_threads(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--serial" => args.serial_check = true,
            "--threads" => {
                let n = it
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| panic!("--threads needs a positive integer"));
                args.threads = n;
            }
            other => panic!("unknown flag {other:?} (expected --smoke, --serial, --threads N)"),
        }
    }
    args
}

/// The four paper workloads with their display names.
pub fn paper_workloads() -> Vec<(&'static str, WorkloadKind)> {
    vec![
        ("alibaba", alibaba_workload(240)),
        ("burst", WorkloadKind::paper_burst()),
        ("exp", WorkloadKind::paper_exp()),
        ("fixed", WorkloadKind::paper_fixed()),
    ]
}

/// The four paper applications with their display names.
pub fn paper_apps_named() -> Vec<(&'static str, MicroserviceApp)> {
    vec![
        ("MediaMicroservice", media_microservice()),
        ("HipsterShop", hipster_shop()),
        ("TrainTicket", train_ticket()),
        ("Teastore", teastore()),
    ]
}

/// Results of one (app, workload) cell under the five compared policies.
#[derive(Debug, serde::Serialize)]
pub struct CellResult {
    /// Application display name.
    pub app: &'static str,
    /// Workload display name.
    pub workload: &'static str,
    /// Escra run.
    pub escra: RunMetrics,
    /// Static-1.5× run.
    pub static_1_5: RunMetrics,
    /// Autopilot (1 s best case) run.
    pub autopilot: RunMetrics,
    /// Tiny-autoscaler (window-percentile predictor) run.
    pub tiny: RunMetrics,
    /// ARC-V (phase-aware in-place vertical scaling) run.
    pub arc_v: RunMetrics,
}

impl CellResult {
    /// The cell's runs in display order (baselines first, Escra last).
    pub fn runs(&self) -> [&RunMetrics; 5] {
        [
            &self.static_1_5,
            &self.autopilot,
            &self.tiny,
            &self.arc_v,
            &self.escra,
        ]
    }
}

/// Runs one cell: a single profiling pre-run shared by the baselines,
/// then one run per policy.
pub fn run_cell(
    app_name: &'static str,
    app: &MicroserviceApp,
    workload_name: &'static str,
    workload: &WorkloadKind,
    duration_secs: u64,
    seed: u64,
) -> CellResult {
    let base = MicroSimConfig::new(app.clone(), workload.clone(), Policy::static_1_5x(), seed)
        .with_duration(SimDuration::from_secs(duration_secs));
    let profiles = profile_run(&base);

    let run_policy = |policy: Policy| {
        let cfg = MicroSimConfig {
            policy,
            ..base.clone()
        };
        run_with_profiles(&cfg, &profiles).metrics
    };

    CellResult {
        app: app_name,
        workload: workload_name,
        escra: run_policy(Policy::escra_default()),
        static_1_5: run_policy(Policy::static_1_5x()),
        autopilot: run_policy(Policy::autopilot_default()),
        tiny: run_policy(Policy::tiny_default()),
        arc_v: run_policy(Policy::arc_v_default()),
    }
}

/// One (app, workload) cell of the experiment grid, as fed to the
/// sweep runner.
#[derive(Debug, Clone)]
pub struct MatrixCell {
    /// Application display name.
    pub app_name: &'static str,
    /// The application.
    pub app: MicroserviceApp,
    /// Workload display name.
    pub workload_name: &'static str,
    /// The workload.
    pub workload: WorkloadKind,
}

/// The 4 × 4 grid in serial iteration order (apps outer, workloads
/// inner), wrapped in sweep [`Scenario`]s keyed on `seed`.
///
/// Note the paper cells deliberately run with the *master* seed itself
/// (`scenario.seed` is derived and available, but every committed
/// artifact in `EXPERIMENTS.md` was produced with one shared seed per
/// cell, and changing that would invalidate the recorded numbers). The
/// fork-derived seeds are exercised by the sweep runner's own tests.
pub fn matrix_scenarios(seed: u64) -> Vec<Scenario<MatrixCell>> {
    let mut cells = Vec::new();
    for (app_name, app) in paper_apps_named() {
        for (workload_name, workload) in paper_workloads() {
            cells.push(MatrixCell {
                app_name,
                app: app.clone(),
                workload_name,
                workload,
            });
        }
    }
    scenarios(seed, cells)
}

fn matrix_cell_fn(duration_secs: u64, seed: u64) -> impl Fn(&Scenario<MatrixCell>) -> CellResult {
    move |s: &Scenario<MatrixCell>| {
        eprintln!(
            "running {} x {} ...",
            s.input.app_name, s.input.workload_name
        );
        run_cell(
            s.input.app_name,
            &s.input.app,
            s.input.workload_name,
            &s.input.workload,
            duration_secs,
            seed,
        )
    }
}

/// Runs the full 4 × 4 matrix (the paper's 16 microservice cells ×
/// 5 policies — its "all 32 experiments" are these runs for the two
/// paper baseline comparisons; tiny/ARC-V extend the same grid) on the
/// deterministic parallel sweep runner.
pub fn run_matrix(duration_secs: u64, seed: u64) -> Vec<CellResult> {
    run_matrix_on(duration_secs, seed, default_threads())
}

/// [`run_matrix`] with an explicit worker count. Results are in grid
/// order and bit-identical for every `threads` value.
pub fn run_matrix_on(duration_secs: u64, seed: u64, threads: usize) -> Vec<CellResult> {
    run_sweep(
        matrix_scenarios(seed),
        threads,
        matrix_cell_fn(duration_secs, seed),
    )
}

/// Reference serial matrix run; [`run_matrix_on`] must match it
/// byte-for-byte once serialized (asserted by the `--serial` flag of
/// the figure binaries).
pub fn run_matrix_serial(duration_secs: u64, seed: u64) -> Vec<CellResult> {
    run_serial(matrix_scenarios(seed), matrix_cell_fn(duration_secs, seed))
}

/// Asserts two result sets serialize to byte-identical JSON — the
/// parallel-vs-serial identity gate behind the `--serial` flag.
///
/// # Panics
///
/// Panics with the first divergent byte offset if the runs differ.
pub fn assert_byte_identical<T: serde::Serialize>(parallel: &[T], serial: &[T]) {
    let p = escra_metrics::to_json(&parallel);
    let s = escra_metrics::to_json(&serial);
    if p != s {
        let at = p
            .bytes()
            .zip(s.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or(p.len().min(s.len()));
        panic!("parallel and serial sweep outputs diverge at byte {at}");
    }
    eprintln!(
        "serial identity check: OK ({} items, {} bytes)",
        parallel.len(),
        p.len()
    );
}

/// Runs the matrix per `args`: parallel on `args.threads` workers, with
/// the byte-identity re-run when `--serial` was given.
pub fn run_matrix_args(args: &SweepArgs) -> Vec<CellResult> {
    let cells = run_matrix_on(args.duration_secs(), SEED, args.threads);
    if args.serial_check {
        let serial = run_matrix_serial(args.duration_secs(), SEED);
        assert_byte_identical(&cells, &serial);
    }
    cells
}

/// Builds the sweep grid for a figure's named `(app, workload)` panels.
pub fn panel_cells(panels: &[(&'static str, &'static str)]) -> Vec<MatrixCell> {
    let apps = paper_apps_named();
    let workloads = paper_workloads();
    panels
        .iter()
        .map(|&(app_name, workload_name)| MatrixCell {
            app_name,
            app: apps
                .iter()
                .find(|(n, _)| *n == app_name)
                .unwrap_or_else(|| panic!("unknown app {app_name}"))
                .1
                .clone(),
            workload_name,
            workload: workloads
                .iter()
                .find(|(n, _)| *n == workload_name)
                .unwrap_or_else(|| panic!("unknown workload {workload_name}"))
                .1
                .clone(),
        })
        .collect()
}

/// Runs an arbitrary cell list per `args` (parallel + optional serial
/// identity check), preserving input order — the fig. 5/6 panel path.
pub fn run_cells_args(cells: Vec<MatrixCell>, args: &SweepArgs) -> Vec<CellResult> {
    let f = matrix_cell_fn(args.duration_secs(), SEED);
    let results = run_sweep(scenarios(SEED, cells.clone()), args.threads, &f);
    if args.serial_check {
        let serial = run_serial(scenarios(SEED, cells), &f);
        assert_byte_identical(&results, &serial);
    }
    results
}

/// Formats the cost-efficiency columns shared by every table-rendering
/// binary: total run cost in normalized dollars and dollars per
/// 1 000 successful requests, both under the default [`CostModel`]
/// (see `DESIGN.md` §13).
///
/// [`CostModel`]: escra_metrics::CostModel
pub fn cost_columns(m: &RunMetrics) -> (String, String) {
    let model = escra_metrics::CostModel::default();
    let cost = model.run_cost(m);
    let per_kilo = model.per_kilo_request(&cost, m.latency.successes());
    (format!("{:.4}", cost.total()), format!("{per_kilo:.4}"))
}

/// Writes an artifact's JSON dump under `target/escra-results/`.
pub fn write_json(name: &str, json: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new("target").join("escra-results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, json).expect("write results");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_and_app_lists_are_complete() {
        assert_eq!(paper_workloads().len(), 4);
        assert_eq!(paper_apps_named().len(), 4);
    }

    #[test]
    fn one_small_cell_runs() {
        let (name, app) = &paper_apps_named()[3]; // Teastore (smallest)
        let cell = run_cell(
            name,
            app,
            "fixed",
            &WorkloadKind::Fixed { rps: 120.0 },
            10,
            1,
        );
        assert!(cell.escra.latency.successes() > 800);
        assert!(cell.static_1_5.latency.successes() > 800);
        assert!(cell.autopilot.latency.successes() > 600);
        assert!(cell.tiny.latency.successes() > 600);
        assert!(cell.arc_v.latency.successes() > 600);
        for m in cell.runs() {
            let (cost, per_kilo) = cost_columns(m);
            let cost: f64 = cost.parse().expect("cost is numeric");
            let per_kilo: f64 = per_kilo.parse().expect("$/1k req is numeric");
            assert!(cost > 0.0 && cost.is_finite(), "{}: cost {cost}", m.policy);
            assert!(per_kilo > 0.0 && per_kilo.is_finite());
        }
    }
}
