//! # escra-bench
//!
//! The benchmark harness that regenerates **every table and figure** of
//! the paper's evaluation. Each artifact has a dedicated binary (see the
//! experiment index in `DESIGN.md`); this library holds the shared
//! experiment-matrix runner so Figs. 4–6 and Table I reuse one set of
//! runs.
//!
//! Run any artifact with, e.g.:
//!
//! ```text
//! cargo run -p escra-bench --release --bin table1_summary
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use escra_harness::{profile_run, run_with_profiles, MicroSimConfig, Policy};
use escra_metrics::RunMetrics;
use escra_simcore::time::SimDuration;
use escra_workloads::{
    alibaba_workload, hipster_shop, media_microservice, teastore, train_ticket, MicroserviceApp,
    WorkloadKind,
};

/// Default measured duration of one microservice run.
pub const RUN_SECS: u64 = 60;
/// Default master seed for the experiment matrix.
pub const SEED: u64 = 20220701;

/// The four paper workloads with their display names.
pub fn paper_workloads() -> Vec<(&'static str, WorkloadKind)> {
    vec![
        ("alibaba", alibaba_workload(240)),
        ("burst", WorkloadKind::paper_burst()),
        ("exp", WorkloadKind::paper_exp()),
        ("fixed", WorkloadKind::paper_fixed()),
    ]
}

/// The four paper applications with their display names.
pub fn paper_apps_named() -> Vec<(&'static str, MicroserviceApp)> {
    vec![
        ("MediaMicroservice", media_microservice()),
        ("HipsterShop", hipster_shop()),
        ("TrainTicket", train_ticket()),
        ("Teastore", teastore()),
    ]
}

/// Results of one (app, workload) cell under the three compared policies.
#[derive(Debug)]
pub struct CellResult {
    /// Application display name.
    pub app: &'static str,
    /// Workload display name.
    pub workload: &'static str,
    /// Escra run.
    pub escra: RunMetrics,
    /// Static-1.5× run.
    pub static_1_5: RunMetrics,
    /// Autopilot (1 s best case) run.
    pub autopilot: RunMetrics,
}

/// Runs one cell: a single profiling pre-run shared by the baselines,
/// then one run per policy.
pub fn run_cell(
    app_name: &'static str,
    app: &MicroserviceApp,
    workload_name: &'static str,
    workload: &WorkloadKind,
    duration_secs: u64,
    seed: u64,
) -> CellResult {
    let base = MicroSimConfig::new(app.clone(), workload.clone(), Policy::static_1_5x(), seed)
        .with_duration(SimDuration::from_secs(duration_secs));
    let profiles = profile_run(&base);

    let run_policy = |policy: Policy| {
        let cfg = MicroSimConfig {
            policy,
            ..base.clone()
        };
        run_with_profiles(&cfg, &profiles).metrics
    };

    CellResult {
        app: app_name,
        workload: workload_name,
        escra: run_policy(Policy::escra_default()),
        static_1_5: run_policy(Policy::static_1_5x()),
        autopilot: run_policy(Policy::autopilot_default()),
    }
}

/// Runs the full 4 × 4 matrix (the paper's 16 microservice cells ×
/// 3 policies — its "all 32 experiments" are these runs for the two
/// baseline comparisons).
pub fn run_matrix(duration_secs: u64, seed: u64) -> Vec<CellResult> {
    let mut out = Vec::new();
    for (app_name, app) in paper_apps_named() {
        for (wl_name, wl) in paper_workloads() {
            eprintln!("running {app_name} x {wl_name} ...");
            out.push(run_cell(app_name, &app, wl_name, &wl, duration_secs, seed));
        }
    }
    out
}

/// Writes an artifact's JSON dump under `target/escra-results/`.
pub fn write_json(name: &str, json: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new("target").join("escra-results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, json).expect("write results");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_and_app_lists_are_complete() {
        assert_eq!(paper_workloads().len(), 4);
        assert_eq!(paper_apps_named().len(), 4);
    }

    #[test]
    fn one_small_cell_runs() {
        let (name, app) = &paper_apps_named()[3]; // Teastore (smallest)
        let cell = run_cell(
            name,
            app,
            "fixed",
            &WorkloadKind::Fixed { rps: 120.0 },
            10,
            1,
        );
        assert!(cell.escra.latency.successes() > 800);
        assert!(cell.static_1_5.latency.successes() > 800);
        assert!(cell.autopilot.latency.successes() > 600);
    }
}
