//! Vendored, offline stand-in for the `criterion` crate.
//!
//! Provides the macro/API surface this workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `benchmark_group`,
//! `bench_function`, `iter`, `iter_batched`) with a simple wall-clock
//! sampler: per bench it warms up, picks an iteration count targeting a
//! few milliseconds per sample, then reports the median per-iteration
//! time. No statistical analysis, plots, or baselines.

use std::time::{Duration, Instant};

/// Top-level benchmark context; hands out [`BenchmarkGroup`]s.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }
}

/// A named group of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timing samples to collect per bench.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and prints its median per-iteration time.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.samples.sort_unstable();
        let median = bencher
            .samples
            .get(bencher.samples.len() / 2)
            .copied()
            .unwrap_or(Duration::ZERO);
        println!("{}/{id}: median {median:?}/iter", self.name);
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(&mut self) {}
}

/// How `iter_batched` amortizes setup cost; the shim treats all sizes
/// the same (one setup per routine invocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Collects timing samples for a single benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, choosing an iteration count so each sample takes
    /// a few milliseconds.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up + calibration: find how many iterations fill ~2ms.
        let calib_start = Instant::now();
        let mut calib_iters: u64 = 0;
        while calib_start.elapsed() < Duration::from_millis(2) && calib_iters < 1_000_000 {
            std::hint::black_box(routine());
            calib_iters += 1;
        }
        let per_sample = calib_iters.max(1);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / per_sample as u32);
        }
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Bundles bench functions into a single group runner, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(4);
        let mut setups = 0u64;
        group.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |x| x * 2,
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 4);
    }
}
