//! Canonical state fingerprints for the model checker.
//!
//! [`StateHash`] is a deliberately boring 64-bit FNV-1a accumulator: the
//! model checker (`escra-mc`) feeds it every behaviourally relevant field
//! of a control-plane state — allocator tracks, agent seq maps, pending
//! grants, the in-flight message multiset — in a canonical order, and
//! uses the digest as the key of its visited set. Two independently
//! keyed passes are combined into a 128-bit [`Fingerprint`] so accidental
//! collisions are out of the picture for the state counts bounded
//! explorations reach (≤ a few million).
//!
//! The same accumulator doubles as a *trace* fingerprint: hashing the
//! rendered [`crate::trace`] event stream of a replay gives a compact
//! witness that two executions took identical decision paths.

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a hasher over heterogeneous state fields.
///
/// All integer writes are length-prefixed by construction (fixed-width
/// little-endian), so distinct field sequences cannot collide by
/// concatenation ambiguity as long as callers keep a fixed schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateHash {
    state: u64,
}

impl Default for StateHash {
    fn default() -> Self {
        Self::new()
    }
}

impl StateHash {
    /// A hasher seeded with the standard FNV-1a offset basis.
    pub fn new() -> Self {
        StateHash { state: FNV_OFFSET }
    }

    /// A hasher seeded with `key` folded into the offset basis, for
    /// independent second-pass hashing.
    pub fn with_key(key: u64) -> Self {
        let mut h = StateHash::new();
        h.write_u64(key);
        h
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` (fixed-width little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a `u32`.
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs an `f64` by bit pattern (exact, not approximate).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorbs a `bool`.
    pub fn write_bool(&mut self, v: bool) {
        self.write_bytes(&[v as u8]);
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// A 128-bit state fingerprint: two independently keyed FNV-1a passes.
pub type Fingerprint = u128;

/// Runs `fill` through two independently keyed hashers and combines the
/// digests into a 128-bit [`Fingerprint`].
pub fn fingerprint128(fill: impl Fn(&mut StateHash)) -> Fingerprint {
    let mut a = StateHash::new();
    fill(&mut a);
    let mut b = StateHash::with_key(0x9e37_79b9_7f4a_7c15);
    fill(&mut b);
    ((a.finish() as u128) << 64) | b.finish() as u128
}

/// Hashes a rendered trace (or any text artifact) into a single `u64`
/// witness, for asserting two replays took identical decision paths.
pub fn trace_fingerprint(rendered: &str) -> u64 {
    let mut h = StateHash::new();
    h.write_bytes(rendered.as_bytes());
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_field_order_sensitive() {
        let mut a = StateHash::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = StateHash::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());

        let mut c = StateHash::new();
        c.write_u64(1);
        c.write_u64(2);
        assert_eq!(a.finish(), c.finish());
    }

    #[test]
    fn keyed_passes_are_independent() {
        let fp = fingerprint128(|h| h.write_u64(42));
        assert_ne!((fp >> 64) as u64, fp as u64);
        assert_eq!(fp, fingerprint128(|h| h.write_u64(42)));
        assert_ne!(fp, fingerprint128(|h| h.write_u64(43)));
    }

    #[test]
    fn f64_hashing_is_exact() {
        let mut a = StateHash::new();
        a.write_f64(0.1 + 0.2);
        let mut b = StateHash::new();
        b.write_f64(0.3);
        // 0.1 + 0.2 != 0.3 bit-for-bit; the hash must see that.
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn trace_fingerprint_distinguishes_streams() {
        assert_ne!(
            trace_fingerprint("a=1 b=2\n"),
            trace_fingerprint("a=1 b=3\n")
        );
        assert_eq!(trace_fingerprint("x\n"), trace_fingerprint("x\n"));
    }
}
