//! A cost model for allocation policies: resource-seconds × configurable
//! unit prices, plus an OOM-kill penalty — the Rodriguez/Buyya
//! cost-efficient-orchestration view of the same runs. Escra's advantage
//! is reported in normalized dollars as well as slack: a policy pays for
//! what it *reserves* (the limit), not what it uses, so slack is money.
//!
//! Default unit prices are cloud-shaped (on-demand vCPU ≈ \$0.04048/hr,
//! memory ≈ \$0.004446/GiB-hr — the GCP N1 split), and the OOM penalty is
//! a flat charge per kill approximating restart + lost-work cost. The
//! absolute magnitudes are arbitrary; only the *ratios* between policies
//! on identical workloads are meaningful, which is why tables also print
//! cost normalized to a baseline.

use crate::recorders::RunMetrics;
use crate::serverless::ServerlessStats;
use serde::{Deserialize, Serialize};

/// Unit prices, in dollars.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Price of one reserved core for one second.
    pub cpu_core_sec: f64,
    /// Price of one reserved MiB for one second.
    pub mem_mib_sec: f64,
    /// Flat penalty per OOM kill (restart + lost work).
    pub oom_kill: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            // $0.04048 per core-hour.
            cpu_core_sec: 0.04048 / 3600.0,
            // $0.004446 per GiB-hour.
            mem_mib_sec: 0.004446 / 1024.0 / 3600.0,
            oom_kill: 0.01,
        }
    }
}

/// One run's cost, itemized.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Reserved-CPU cost, in dollars.
    pub cpu: f64,
    /// Reserved-memory cost, in dollars.
    pub mem: f64,
    /// OOM-kill penalties, in dollars.
    pub oom: f64,
}

impl CostBreakdown {
    /// Total cost, in dollars.
    pub fn total(&self) -> f64 {
        self.cpu + self.mem + self.oom
    }
}

impl CostModel {
    /// Cost of one microsim run from its pinned metrics. The aggregate
    /// limit series (cores resp. MiB) is sampled once per second, so
    /// each sample is one core-second (resp. MiB-second) of reservation
    /// at that level.
    pub fn run_cost(&self, m: &RunMetrics) -> CostBreakdown {
        let core_secs: f64 = m.cpu_limit_series.iter().map(|(_, v)| v).sum();
        let mem_mib_secs: f64 = m.mem_limit_series.iter().map(|(_, v)| v).sum();
        CostBreakdown {
            cpu: core_secs * self.cpu_core_sec,
            mem: mem_mib_secs * self.mem_mib_sec,
            oom: m.oom_kills as f64 * self.oom_kill,
        }
    }

    /// Cost of one serverless/trace run from its allocated
    /// resource-seconds (see [`ServerlessStats::record_allocated`]).
    pub fn serverless_cost(&self, s: &ServerlessStats, oom_kills: u64) -> CostBreakdown {
        CostBreakdown {
            cpu: s.alloc_cpu_core_secs * self.cpu_core_sec,
            mem: s.alloc_mem_mib_secs * self.mem_mib_sec,
            oom: oom_kills as f64 * self.oom_kill,
        }
    }

    /// Cost per 1000 successful requests — the cost-efficiency figure
    /// printed in the tables (a policy that is cheap because it fails
    /// requests is not efficient). Infinite when nothing succeeded.
    pub fn per_kilo_request(&self, breakdown: &CostBreakdown, successes: u64) -> f64 {
        if successes == 0 {
            f64::INFINITY
        } else {
            breakdown.total() * 1000.0 / successes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_positive_and_cloud_shaped() {
        let m = CostModel::default();
        assert!(m.cpu_core_sec > 0.0 && m.mem_mib_sec > 0.0 && m.oom_kill > 0.0);
        // A core-second costs far more than a MiB-second.
        assert!(m.cpu_core_sec / m.mem_mib_sec > 1000.0);
    }

    #[test]
    fn run_cost_integrates_limit_series() {
        let model = CostModel {
            cpu_core_sec: 1.0,
            mem_mib_sec: 0.5,
            oom_kill: 10.0,
        };
        let mut m = RunMetrics::new("test");
        for s in 0..3u64 {
            // 3 one-second samples: 2 reserved cores, 4 reserved MiB.
            m.record_limits(escra_simcore::time::SimTime::from_secs(s), 2.0, 4.0);
        }
        m.oom_kills = 2;
        let c = model.run_cost(&m);
        assert_eq!(c.cpu, 6.0);
        assert_eq!(c.mem, 6.0);
        assert_eq!(c.oom, 20.0);
        assert_eq!(c.total(), 32.0);
    }

    #[test]
    fn serverless_cost_uses_allocated_time() {
        let model = CostModel {
            cpu_core_sec: 2.0,
            mem_mib_sec: 1.0,
            oom_kill: 5.0,
        };
        let mut s = ServerlessStats::new();
        s.record_allocated(3.0, 7.0);
        let c = model.serverless_cost(&s, 1);
        assert_eq!(c.cpu, 6.0);
        assert_eq!(c.mem, 7.0);
        assert_eq!(c.oom, 5.0);
    }

    #[test]
    fn per_kilo_request_normalizes() {
        let model = CostModel::default();
        let b = CostBreakdown {
            cpu: 1.0,
            mem: 1.0,
            oom: 0.0,
        };
        assert!((model.per_kilo_request(&b, 4000) - 0.5).abs() < 1e-12);
        assert!(model.per_kilo_request(&b, 0).is_infinite());
    }
}
