//! Serverless-style metrics for the trace-driven scenarios: cold
//! starts, wasted resource-time, and absolute execution/total slowdown
//! (the dslab-faas reporting vocabulary), recorded next to the paper's
//! own metrics (slack CDFs, OOM kills, throttle rates).

use escra_simcore::histogram::LogHistogram;
use escra_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Per-run serverless statistics.
///
/// *Wasted resource-time* integrates `limit − usage` over wall-clock
/// time across live pods (core-seconds for CPU, MiB-seconds for
/// memory): the reservation a static invoker holds but never uses.
/// *Absolute execution slowdown* is `execution time − ideal time`
/// (throttle stretch only); *absolute total slowdown* is
/// `arrival-to-completion − ideal time` (adds queueing and cold start).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ServerlessStats {
    /// Completed invocations.
    pub invocations: u64,
    /// Invocations that had to wait for a pod cold start.
    pub cold_starts: u64,
    /// Cold-start latency distribution, in ms.
    cold_start_ms: LogHistogram,
    /// Integrated CPU reservation slack, in core-seconds.
    pub wasted_cpu_core_secs: f64,
    /// Integrated memory reservation slack, in MiB-seconds.
    pub wasted_mem_mib_secs: f64,
    /// Integrated CPU reservation (the limit itself, not its slack), in
    /// core-seconds — what the cost model bills for.
    pub alloc_cpu_core_secs: f64,
    /// Integrated memory reservation, in MiB-seconds.
    pub alloc_mem_mib_secs: f64,
    /// Absolute execution slowdown distribution, in ms.
    abs_exec_slowdown_ms: LogHistogram,
    /// Absolute total slowdown distribution, in ms.
    abs_total_slowdown_ms: LogHistogram,
}

fn as_ms(d: SimDuration) -> f64 {
    d.as_micros() as f64 / 1_000.0
}

impl ServerlessStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        ServerlessStats::default()
    }

    /// Records one cold start with its latency.
    pub fn record_cold_start(&mut self, latency: SimDuration) {
        self.cold_starts += 1;
        self.cold_start_ms.record(as_ms(latency));
    }

    /// Records one completed invocation: `ideal` is the unthrottled
    /// single-core execution time, `exec` the actual execution time and
    /// `total` the arrival-to-completion time (`total ≥ exec ≥ ideal`
    /// up to clamping).
    pub fn record_completion(&mut self, ideal: SimDuration, exec: SimDuration, total: SimDuration) {
        self.invocations += 1;
        self.abs_exec_slowdown_ms
            .record((as_ms(exec) - as_ms(ideal)).max(0.0));
        self.abs_total_slowdown_ms
            .record((as_ms(total) - as_ms(ideal)).max(0.0));
    }

    /// Accumulates wasted resource-time for one accounting interval.
    pub fn record_wasted(&mut self, cpu_core_secs: f64, mem_mib_secs: f64) {
        self.wasted_cpu_core_secs += cpu_core_secs.max(0.0);
        self.wasted_mem_mib_secs += mem_mib_secs.max(0.0);
    }

    /// Accumulates *allocated* (reserved) resource-time for one
    /// accounting interval — the billing integral behind
    /// [`crate::cost::CostModel::serverless_cost`].
    pub fn record_allocated(&mut self, cpu_core_secs: f64, mem_mib_secs: f64) {
        self.alloc_cpu_core_secs += cpu_core_secs.max(0.0);
        self.alloc_mem_mib_secs += mem_mib_secs.max(0.0);
    }

    /// Mean cold-start latency, in ms.
    pub fn cold_start_mean_ms(&self) -> f64 {
        self.cold_start_ms.mean()
    }

    /// Cold-start latency percentile, in ms.
    pub fn cold_start_p(&self, percentile: f64) -> f64 {
        self.cold_start_ms.percentile(percentile)
    }

    /// Fraction of invocations that cold-started.
    pub fn cold_start_rate(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            self.cold_starts as f64 / self.invocations as f64
        }
    }

    /// Mean absolute execution slowdown, in ms.
    pub fn abs_exec_slowdown_mean_ms(&self) -> f64 {
        self.abs_exec_slowdown_ms.mean()
    }

    /// Absolute execution-slowdown percentile, in ms.
    pub fn abs_exec_slowdown_p(&self, percentile: f64) -> f64 {
        self.abs_exec_slowdown_ms.percentile(percentile)
    }

    /// Mean absolute total slowdown, in ms.
    pub fn abs_total_slowdown_mean_ms(&self) -> f64 {
        self.abs_total_slowdown_ms.mean()
    }

    /// Absolute total-slowdown percentile, in ms.
    pub fn abs_total_slowdown_p(&self, percentile: f64) -> f64 {
        self.abs_total_slowdown_ms.percentile(percentile)
    }

    /// Folds another recorder's samples into this one. Shard reduction
    /// must merge in a fixed (shard-index) order: the wasted-time sums
    /// are floating-point accumulations, exact only for a fixed order.
    pub fn merge(&mut self, other: &ServerlessStats) {
        self.invocations += other.invocations;
        self.cold_starts += other.cold_starts;
        self.cold_start_ms.merge(&other.cold_start_ms);
        self.wasted_cpu_core_secs += other.wasted_cpu_core_secs;
        self.wasted_mem_mib_secs += other.wasted_mem_mib_secs;
        self.alloc_cpu_core_secs += other.alloc_cpu_core_secs;
        self.alloc_mem_mib_secs += other.alloc_mem_mib_secs;
        self.abs_exec_slowdown_ms.merge(&other.abs_exec_slowdown_ms);
        self.abs_total_slowdown_ms
            .merge(&other.abs_total_slowdown_ms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completions_and_slowdowns() {
        let mut s = ServerlessStats::new();
        s.record_completion(
            SimDuration::from_millis(100),
            SimDuration::from_millis(150),
            SimDuration::from_millis(700),
        );
        s.record_completion(
            SimDuration::from_millis(100),
            SimDuration::from_millis(100),
            SimDuration::from_millis(100),
        );
        assert_eq!(s.invocations, 2);
        // (50 + 0) / 2 and (600 + 0) / 2, up to log-bucket width.
        assert!((s.abs_exec_slowdown_mean_ms() - 25.0).abs() < 2.0);
        assert!((s.abs_total_slowdown_mean_ms() - 300.0).abs() < 12.0);
    }

    #[test]
    fn cold_starts_and_rate() {
        let mut s = ServerlessStats::new();
        s.record_cold_start(SimDuration::from_millis(500));
        s.record_completion(
            SimDuration::from_millis(10),
            SimDuration::from_millis(10),
            SimDuration::from_millis(510),
        );
        s.record_completion(
            SimDuration::from_millis(10),
            SimDuration::from_millis(10),
            SimDuration::from_millis(10),
        );
        assert_eq!(s.cold_starts, 1);
        assert!((s.cold_start_rate() - 0.5).abs() < 1e-12);
        assert!((s.cold_start_mean_ms() - 500.0).abs() < 20.0);
    }

    #[test]
    fn wasted_time_accumulates_and_clamps() {
        let mut s = ServerlessStats::new();
        s.record_wasted(1.5, 256.0);
        s.record_wasted(0.5, 64.0);
        s.record_wasted(-1.0, -1.0); // clamped
        assert_eq!(s.wasted_cpu_core_secs, 2.0);
        assert_eq!(s.wasted_mem_mib_secs, 320.0);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = ServerlessStats::new();
        let mut b = ServerlessStats::new();
        a.record_cold_start(SimDuration::from_millis(400));
        a.record_wasted(1.0, 10.0);
        b.record_cold_start(SimDuration::from_millis(600));
        b.record_wasted(2.0, 20.0);
        b.record_completion(
            SimDuration::from_millis(10),
            SimDuration::from_millis(20),
            SimDuration::from_millis(30),
        );
        a.record_allocated(5.0, 50.0);
        b.record_allocated(7.0, 70.0);
        a.merge(&b);
        assert_eq!(a.cold_starts, 2);
        assert_eq!(a.invocations, 1);
        assert_eq!(a.wasted_cpu_core_secs, 3.0);
        assert_eq!(a.wasted_mem_mib_secs, 30.0);
        assert_eq!(a.alloc_cpu_core_secs, 12.0);
        assert_eq!(a.alloc_mem_mib_secs, 120.0);
        assert!(a.cold_start_mean_ms() > 400.0);
    }
}
