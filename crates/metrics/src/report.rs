//! Plain-text tables and JSON export for the benchmark harness output.

use serde::Serialize;

/// A simple aligned text table, used by every figure/table binary to
/// print the paper's rows.
///
/// ```
/// use escra_metrics::report::Table;
/// let mut t = Table::new(vec!["app", "Δ latency %"]);
/// t.row(vec!["teastore".into(), format!("{:.1}", 25.7)]);
/// let s = t.render();
/// assert!(s.contains("teastore"));
/// assert!(s.contains("25.7"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", c, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Serializes any experiment result to pretty JSON (for re-plotting).
///
/// # Panics
///
/// Panics if the value cannot be serialized (never the case for the
/// workspace's result types).
pub fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("result types are serializable")
}

/// Formats a CDF as `value fraction` lines for plotting tools.
pub fn cdf_lines(cdf: &[(f64, f64)]) -> String {
    let mut out = String::new();
    for (v, f) in cdf {
        out.push_str(&format!("{v:.6} {f:.6}\n"));
    }
    out
}

/// Downsamples a CDF to at most `max_points` points (keeps endpoints).
pub fn downsample_cdf(cdf: &[(f64, f64)], max_points: usize) -> Vec<(f64, f64)> {
    assert!(max_points >= 2, "need at least two points");
    if cdf.len() <= max_points {
        return cdf.to_vec();
    }
    let stride = (cdf.len() - 1) as f64 / (max_points - 1) as f64;
    (0..max_points)
        .map(|i| cdf[(i as f64 * stride).round() as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(vec!["a", "bbbb"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a"));
        assert!(lines[2].starts_with("xxxxxx"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn json_roundtrip() {
        let v = vec![(1.0f64, 2.0f64)];
        let s = to_json(&v);
        assert!(s.contains("1.0"));
    }

    #[test]
    fn cdf_lines_format() {
        let s = cdf_lines(&[(1.0, 0.5), (2.0, 1.0)]);
        assert_eq!(s.lines().count(), 2);
        assert!(s.starts_with("1.000000 0.500000"));
    }

    #[test]
    fn downsample_keeps_endpoints() {
        let cdf: Vec<(f64, f64)> = (0..1000).map(|i| (i as f64, i as f64 / 999.0)).collect();
        let d = downsample_cdf(&cdf, 10);
        assert_eq!(d.len(), 10);
        assert_eq!(d[0], cdf[0]);
        assert_eq!(d[9], cdf[999]);
    }

    #[test]
    fn downsample_short_is_identity() {
        let cdf = vec![(1.0, 1.0)];
        assert_eq!(downsample_cdf(&cdf, 5), cdf);
    }
}
