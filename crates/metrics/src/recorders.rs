//! Recorders for the paper's evaluation metrics (§VI-A):
//! application throughput (successful req/s), 99.9 %-ile end-to-end
//! latency, and absolute CPU/memory slack.

use escra_simcore::histogram::LogHistogram;
use escra_simcore::time::{SimDuration, SimTime};
use escra_simcore::timeseries::TimeSeries;
use serde::{Deserialize, Serialize};

/// End-to-end request latency plus success/failure accounting.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencyRecorder {
    hist_ms: LogHistogram,
    successes: u64,
    failures: u64,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        LatencyRecorder::default()
    }

    /// Records a successful request with its end-to-end latency.
    pub fn record_success(&mut self, latency: SimDuration) {
        self.successes += 1;
        self.hist_ms.record(latency.as_micros() as f64 / 1_000.0);
    }

    /// Records a failed request (timeout, or killed mid-flight).
    pub fn record_failure(&mut self) {
        self.failures += 1;
    }

    /// Successful requests.
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// Failed requests.
    pub fn failures(&self) -> u64 {
        self.failures
    }

    /// Latency percentile in milliseconds (e.g. `p(99.9)`).
    pub fn p(&self, percentile: f64) -> f64 {
        self.hist_ms.percentile(percentile)
    }

    /// Mean latency in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.hist_ms.mean()
    }

    /// Throughput in successful requests per second over `duration`.
    pub fn throughput(&self, duration: SimDuration) -> f64 {
        if duration.is_zero() {
            0.0
        } else {
            self.successes as f64 / duration.as_secs_f64()
        }
    }

    /// The latency CDF `(ms, fraction)` (Fig. 7 panels).
    pub fn cdf(&self) -> Vec<(f64, f64)> {
        self.hist_ms.cdf()
    }

    /// Folds another recorder's samples into this one — the combining
    /// step when per-thread recorders from a sharded run are reduced to
    /// one distribution. Counts add exactly; percentiles are as accurate
    /// as [`LogHistogram::merge`] (bucket-exact).
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.hist_ms.merge(&other.hist_ms);
        self.successes += other.successes;
        self.failures += other.failures;
    }
}

/// Absolute slack distributions: CPU in cores, memory in MiB — the
/// quantities whose CDFs are Figs. 5 and 6.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SlackRecorder {
    cpu_cores: LogHistogram,
    mem_mib: LogHistogram,
}

impl SlackRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        SlackRecorder::default()
    }

    /// Records one per-container sample: `limit − usage` for both
    /// resources (clamped at zero).
    pub fn record(&mut self, cpu_slack_cores: f64, mem_slack_mib: f64) {
        self.cpu_cores.record(cpu_slack_cores.max(0.0));
        self.mem_mib.record(mem_slack_mib.max(0.0));
    }

    /// CPU slack percentile, in cores.
    pub fn cpu_p(&self, percentile: f64) -> f64 {
        self.cpu_cores.percentile(percentile)
    }

    /// Memory slack percentile, in MiB.
    pub fn mem_p(&self, percentile: f64) -> f64 {
        self.mem_mib.percentile(percentile)
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.cpu_cores.count()
    }

    /// CPU slack CDF `(cores, fraction)` (Fig. 5).
    pub fn cpu_cdf(&self) -> Vec<(f64, f64)> {
        self.cpu_cores.cdf()
    }

    /// Memory slack CDF `(MiB, fraction)` (Fig. 6).
    pub fn mem_cdf(&self) -> Vec<(f64, f64)> {
        self.mem_mib.cdf()
    }

    /// Folds another recorder's samples into this one (per-thread
    /// recorder reduction; see [`LatencyRecorder::merge`]).
    pub fn merge(&mut self, other: &SlackRecorder) {
        self.cpu_cores.merge(&other.cpu_cores);
        self.mem_mib.merge(&other.mem_mib);
    }
}

/// Everything measured in one experiment run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Which policy produced this run (e.g. `"escra"`).
    pub policy: String,
    /// Request latency + success counters.
    pub latency: LatencyRecorder,
    /// Slack distributions.
    pub slack: SlackRecorder,
    /// Aggregate CPU limit over time, in cores (Figs. 8a/9a).
    pub cpu_limit_series: TimeSeries,
    /// Aggregate memory limit over time, in MiB (Figs. 8c/9c).
    pub mem_limit_series: TimeSeries,
    /// OOM kills suffered during the run (§VI-E).
    pub oom_kills: u64,
    /// Measured duration of the run.
    pub duration: SimDuration,
}

impl RunMetrics {
    /// Creates empty metrics for a named policy.
    pub fn new(policy: impl Into<String>) -> Self {
        RunMetrics {
            policy: policy.into(),
            latency: LatencyRecorder::new(),
            slack: SlackRecorder::new(),
            cpu_limit_series: TimeSeries::new("cpu_limit_cores"),
            mem_limit_series: TimeSeries::new("mem_limit_mib"),
            oom_kills: 0,
            duration: SimDuration::ZERO,
        }
    }

    /// Throughput in successful requests per second.
    pub fn throughput(&self) -> f64 {
        self.latency.throughput(self.duration)
    }

    /// Records the aggregate limits at `now`.
    pub fn record_limits(&mut self, now: SimTime, cpu_cores: f64, mem_mib: f64) {
        self.cpu_limit_series.record(now, cpu_cores);
        self.mem_limit_series.record(now, mem_mib);
    }
}

/// The headline comparisons of Table I / Fig. 4, computed between a
/// baseline run and an Escra run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// % decrease in 99.9 % latency from baseline to Escra (+ is better).
    pub latency_decrease_pct: f64,
    /// % increase in throughput from baseline to Escra (+ is better).
    pub throughput_increase_pct: f64,
    /// % reduction in median CPU slack (+ is better).
    pub cpu_slack_p50_reduction_pct: f64,
    /// % reduction in 99 %-ile CPU slack.
    pub cpu_slack_p99_reduction_pct: f64,
    /// % reduction in median memory slack.
    pub mem_slack_p50_reduction_pct: f64,
    /// % reduction in 99 %-ile memory slack.
    pub mem_slack_p99_reduction_pct: f64,
}

fn reduction_pct(baseline: f64, new: f64) -> f64 {
    // A numerically-zero baseline (tight scalers drive p50 slack to
    // ~1e-16 cores) makes the percentage meaningless — report 0 rather
    // than a ±1e17% outlier that would dominate a matrix average.
    if baseline <= 1e-9 {
        0.0
    } else {
        (baseline - new) / baseline * 100.0
    }
}

impl Comparison {
    /// Compares `baseline` against `escra`.
    pub fn between(baseline: &RunMetrics, escra: &RunMetrics) -> Comparison {
        Comparison {
            latency_decrease_pct: reduction_pct(baseline.latency.p(99.9), escra.latency.p(99.9)),
            throughput_increase_pct: if baseline.throughput() > 0.0 {
                (escra.throughput() - baseline.throughput()) / baseline.throughput() * 100.0
            } else {
                0.0
            },
            cpu_slack_p50_reduction_pct: reduction_pct(
                baseline.slack.cpu_p(50.0),
                escra.slack.cpu_p(50.0),
            ),
            cpu_slack_p99_reduction_pct: reduction_pct(
                baseline.slack.cpu_p(99.0),
                escra.slack.cpu_p(99.0),
            ),
            mem_slack_p50_reduction_pct: reduction_pct(
                baseline.slack.mem_p(50.0),
                escra.slack.mem_p(50.0),
            ),
            mem_slack_p99_reduction_pct: reduction_pct(
                baseline.slack.mem_p(99.0),
                escra.slack.mem_p(99.0),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_percentiles_and_throughput() {
        let mut l = LatencyRecorder::new();
        for i in 1..=100 {
            l.record_success(SimDuration::from_millis(i));
        }
        l.record_failure();
        assert_eq!(l.successes(), 100);
        assert_eq!(l.failures(), 1);
        let p50 = l.p(50.0);
        assert!((p50 - 50.0).abs() < 2.0, "p50 {p50}");
        assert!((l.throughput(SimDuration::from_secs(10)) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn slack_recorder_percentiles() {
        let mut s = SlackRecorder::new();
        for i in 0..100 {
            s.record(i as f64 / 100.0, i as f64);
        }
        assert_eq!(s.count(), 100);
        assert!(s.cpu_p(99.0) > 0.9);
        assert!(s.mem_p(50.0) >= 45.0 && s.mem_p(50.0) <= 55.0);
        assert!(!s.cpu_cdf().is_empty());
    }

    #[test]
    fn negative_slack_clamped() {
        let mut s = SlackRecorder::new();
        s.record(-1.0, -5.0);
        assert_eq!(s.cpu_p(100.0), 0.0);
    }

    #[test]
    fn comparison_directions() {
        let mut base = RunMetrics::new("static");
        let mut escra = RunMetrics::new("escra");
        base.duration = SimDuration::from_secs(10);
        escra.duration = SimDuration::from_secs(10);
        for _ in 0..100 {
            base.latency.record_success(SimDuration::from_millis(200));
            escra.latency.record_success(SimDuration::from_millis(100));
            escra.latency.record_success(SimDuration::from_millis(100));
            base.slack.record(2.0, 200.0);
            escra.slack.record(0.2, 50.0);
        }
        let c = Comparison::between(&base, &escra);
        assert!(c.latency_decrease_pct > 45.0);
        assert!(c.throughput_increase_pct > 95.0);
        assert!(c.cpu_slack_p50_reduction_pct > 85.0);
        assert!(c.mem_slack_p50_reduction_pct > 70.0);
    }

    #[test]
    fn run_metrics_limits_series() {
        let mut m = RunMetrics::new("escra");
        m.record_limits(SimTime::from_secs(0), 4.0, 1024.0);
        m.record_limits(SimTime::from_secs(1), 3.0, 900.0);
        assert_eq!(m.cpu_limit_series.len(), 2);
        assert_eq!(m.mem_limit_series.last(), Some(900.0));
    }
}
