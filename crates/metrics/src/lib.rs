//! # escra-metrics
//!
//! Measurement and reporting for the Escra reproduction:
//!
//! * [`recorders`] — the paper's metrics (§VI-A): 99.9 %-ile end-to-end
//!   latency, throughput in successful req/s, absolute CPU/memory slack
//!   distributions, aggregate-limit time series, and the Table I / Fig. 4
//!   [`recorders::Comparison`] between a baseline and Escra;
//! * [`report`] — aligned text tables, CDF dumps and JSON export used by
//!   every figure/table binary in `escra-bench`;
//! * [`trace`] — zero-allocation per-decision audit trail: the
//!   [`trace::TraceSink`] trait (with the compile-to-nothing
//!   [`trace::NoopSink`]), the ring-buffer [`trace::TraceRecorder`], and
//!   the deterministic multi-recorder merge/render used by `trace_dump`;
//! * [`serverless`] — serverless-style statistics for the trace-driven
//!   scenarios: cold starts and their latency, wasted resource-time,
//!   and absolute execution/total slowdown distributions;
//! * [`cost`] — the cost model: resource-seconds × configurable unit
//!   prices plus an OOM-kill penalty, so every comparison can also be
//!   stated in normalized dollars (the cost-efficiency column);
//! * [`expo`] — Prometheus-style text exposition and JSON snapshots of
//!   controller counters, shard depths and decision-latency histograms;
//! * [`fingerprint`] — canonical FNV-1a state/trace fingerprints used by
//!   the `escra-mc` model checker's visited set and replay witnesses.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cost;
pub mod expo;
pub mod fingerprint;
pub mod recorders;
pub mod report;
pub mod serverless;
pub mod trace;

pub use cost::{CostBreakdown, CostModel};
pub use expo::{ExpoSnapshot, HistogramSummary, NamedCounter, PromText, ShardDepth};
pub use fingerprint::{fingerprint128, trace_fingerprint, Fingerprint, StateHash};
pub use recorders::{Comparison, LatencyRecorder, RunMetrics, SlackRecorder};
pub use report::{cdf_lines, downsample_cdf, to_json, Table};
pub use serverless::ServerlessStats;
pub use trace::{
    grant_latency_histogram, kind_counts, merge_events, render_line, render_merged, NoopSink,
    TraceEvent, TraceEventKind, TraceRecorder, TraceSink,
};
