//! # escra-metrics
//!
//! Measurement and reporting for the Escra reproduction:
//!
//! * [`recorders`] — the paper's metrics (§VI-A): 99.9 %-ile end-to-end
//!   latency, throughput in successful req/s, absolute CPU/memory slack
//!   distributions, aggregate-limit time series, and the Table I / Fig. 4
//!   [`recorders::Comparison`] between a baseline and Escra;
//! * [`report`] — aligned text tables, CDF dumps and JSON export used by
//!   every figure/table binary in `escra-bench`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod recorders;
pub mod report;

pub use recorders::{Comparison, LatencyRecorder, RunMetrics, SlackRecorder};
pub use report::{cdf_lines, downsample_cdf, to_json, Table};
