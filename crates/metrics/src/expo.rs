//! Exposition of control-plane observability: Prometheus-style text
//! rendering and a JSON snapshot shape.
//!
//! [`PromText`] renders counters, gauges and [`LogHistogram`] summaries
//! in the Prometheus text exposition format (`# HELP` / `# TYPE` +
//! samples), which a scrape endpoint could serve verbatim; here the
//! `trace_dump` bin writes it next to the decision trace.
//! [`ExpoSnapshot`] is the JSON twin: the same numbers as serializable
//! structs, written through [`crate::report::to_json`].

use escra_simcore::histogram::LogHistogram;
use serde::Serialize;
use std::fmt::Write as _;

/// Incremental Prometheus text-format builder.
#[derive(Debug, Clone, Default)]
pub struct PromText {
    out: String,
}

impl PromText {
    /// Starts an empty exposition.
    pub fn new() -> Self {
        PromText::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Adds a monotonic counter sample.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "counter");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// Adds a gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.header(name, help, "gauge");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// Adds a gauge with one label per row, e.g. per-shard queue depths.
    pub fn labeled_gauge(&mut self, name: &str, help: &str, label: &str, rows: &[(String, f64)]) {
        self.header(name, help, "gauge");
        for (value_of_label, v) in rows {
            let _ = writeln!(self.out, "{name}{{{label}=\"{value_of_label}\"}} {v}");
        }
    }

    /// Adds a histogram as a Prometheus `summary`: φ-quantiles plus
    /// `_sum` / `_count` (sum is reconstructed as `mean × count`, exact
    /// to the histogram's bucket resolution).
    pub fn summary(&mut self, name: &str, help: &str, hist: &LogHistogram) {
        self.header(name, help, "summary");
        for q in [0.5, 0.9, 0.99] {
            let v = if hist.is_empty() {
                0.0
            } else {
                hist.percentile(q * 100.0)
            };
            let _ = writeln!(self.out, "{name}{{quantile=\"{q}\"}} {v}");
        }
        let sum = if hist.is_empty() {
            0.0
        } else {
            hist.mean() * hist.count() as f64
        };
        let _ = writeln!(self.out, "{name}_sum {sum}");
        let _ = writeln!(self.out, "{name}_count {}", hist.count());
    }

    /// The rendered exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

/// One named counter in a JSON snapshot.
#[derive(Debug, Clone, Serialize)]
pub struct NamedCounter {
    /// Metric name.
    pub name: String,
    /// Counter value.
    pub value: u64,
}

impl NamedCounter {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, value: u64) -> Self {
        NamedCounter {
            name: name.into(),
            value,
        }
    }
}

/// A compact serializable view of one [`LogHistogram`].
#[derive(Debug, Clone, Serialize)]
pub struct HistogramSummary {
    /// Metric name.
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// Mean sample value.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl HistogramSummary {
    /// Summarises `hist` under `name`.
    pub fn of(name: impl Into<String>, hist: &LogHistogram) -> Self {
        let empty = hist.is_empty();
        HistogramSummary {
            name: name.into(),
            count: hist.count(),
            mean: if empty { 0.0 } else { hist.mean() },
            p50: if empty { 0.0 } else { hist.percentile(50.0) },
            p99: if empty { 0.0 } else { hist.percentile(99.0) },
        }
    }
}

/// Per-shard channel state in a JSON snapshot.
#[derive(Debug, Clone, Serialize)]
pub struct ShardDepth {
    /// Shard index.
    pub shard: u32,
    /// Undrained work messages at snapshot time.
    pub depth: u32,
}

/// The JSON snapshot of a control plane's observable state:
/// `ControllerStats` counters (flattened to name/value pairs so this
/// crate stays independent of `escra-core`), per-shard queue depths,
/// decision-latency summaries, and trace-recorder health.
#[derive(Debug, Clone, Serialize, Default)]
pub struct ExpoSnapshot {
    /// Controller counters, one entry per stats field.
    pub counters: Vec<NamedCounter>,
    /// Outstanding work per shard (empty for a serial controller).
    pub shard_depths: Vec<ShardDepth>,
    /// Latency / decision histograms.
    pub histograms: Vec<HistogramSummary>,
    /// Events held across all trace recorders.
    pub trace_events: u64,
    /// Events lost to ring-buffer overflow across all recorders.
    pub trace_dropped: u64,
}

impl ExpoSnapshot {
    /// Serialises the snapshot as pretty JSON.
    pub fn to_json(&self) -> String {
        crate::report::to_json(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prom_text_counters_and_gauges() {
        let mut p = PromText::new();
        p.counter("escra_mem_grants_total", "Memory grants issued.", 7);
        p.gauge("escra_pool_cores", "Pool CPU limit.", 8.5);
        p.labeled_gauge(
            "escra_shard_depth",
            "Queue depth per shard.",
            "shard",
            &[("0".into(), 3.0), ("1".into(), 0.0)],
        );
        let text = p.finish();
        assert!(text.contains("# TYPE escra_mem_grants_total counter"));
        assert!(text.contains("escra_mem_grants_total 7"));
        assert!(text.contains("escra_pool_cores 8.5"));
        assert!(text.contains("escra_shard_depth{shard=\"0\"} 3"));
        assert!(text.contains("escra_shard_depth{shard=\"1\"} 0"));
    }

    #[test]
    fn prom_summary_quantiles() {
        let mut h = LogHistogram::new();
        for i in 1..=100 {
            h.record(i as f64);
        }
        let mut p = PromText::new();
        p.summary("escra_grant_latency_ms", "Trap-to-grant latency.", &h);
        let text = p.finish();
        assert!(text.contains("# TYPE escra_grant_latency_ms summary"));
        assert!(text.contains("escra_grant_latency_ms{quantile=\"0.5\"}"));
        assert!(text.contains("escra_grant_latency_ms_count 100"));
    }

    #[test]
    fn prom_summary_of_empty_histogram_is_zeroed() {
        let mut p = PromText::new();
        p.summary("x", "empty", &LogHistogram::new());
        let text = p.finish();
        assert!(text.contains("x{quantile=\"0.5\"} 0"));
        assert!(text.contains("x_count 0"));
    }

    #[test]
    fn snapshot_serialises() {
        let mut h = LogHistogram::new();
        h.record(250.0);
        let snap = ExpoSnapshot {
            counters: vec![NamedCounter::new("mem_grants", 3)],
            shard_depths: vec![ShardDepth { shard: 0, depth: 2 }],
            histograms: vec![HistogramSummary::of("grant_latency_ms", &h)],
            trace_events: 41,
            trace_dropped: 0,
        };
        let json = snap.to_json();
        assert!(json.contains("\"mem_grants\""));
        assert!(json.contains("\"shard\": 0"));
        assert!(json.contains("\"grant_latency_ms\""));
        assert!(json.contains("\"trace_events\": 41"));
    }
}
