//! Zero-allocation decision tracing for the control plane.
//!
//! The paper's headline claim is *sub-second, event-driven* allocation,
//! but aggregate counters cannot answer "why did container C's quota
//! change at t = 12.4 s" or "how long did that OOM-grant round trip
//! take". This module provides the audit trail: a compact
//! [`TraceEvent`] per control-plane decision, collected into a
//! fixed-capacity ring buffer ([`TraceRecorder`]) behind a [`TraceSink`]
//! trait whose no-op implementation ([`NoopSink`]) compiles to nothing
//! on the telemetry hot path.
//!
//! ## Zero-cost gating
//!
//! Every instrumentation site in `escra-core` / `escra-net` is written
//! as
//!
//! ```ignore
//! if S::ENABLED {
//!     self.sink.emit(now, TraceEventKind::...);
//! }
//! ```
//!
//! For `S = NoopSink` the associated constant is `false`, the branch is
//! dead code, and the compiled ingest path is byte-equivalent to the
//! uninstrumented one — a property held by the `overhead_controller
//! --check` regression gate, which runs with `NoopSink` compiled in.
//!
//! ## Determinism and the merge rule
//!
//! A sharded Controller produces one recorder per shard (plus one for
//! the router), each with its own monotonic `seq`. [`merge_events`]
//! folds any set of recorders into a single canonical stream by a
//! stable sort on `(time, actor, class, seq)`:
//!
//! * `actor` ([`TraceEventKind::actor_key`]) scopes each event to the
//!   entity it is about (container, node, fault edge, …). All of one
//!   container's events come from its single home shard, so within an
//!   `(time, actor)` cell the shard-local `seq` is already the emission
//!   order — in the serial and the sharded Controller alike.
//! * `class` is a recorder attribute ([`TraceRecorder::with_class`])
//!   separating controller-side, agent-side and fault-injector
//!   recorders, so seqs are never compared across unrelated streams.
//! * Cluster-wide [`TraceEventKind::ReclaimSweep`] events are emitted
//!   once per shard (every shard runs the reclaim schedule); identical
//!   adjacent sweeps at one instant collapse to one, matching the
//!   sequential Controller.
//!
//! The rendered dump ([`render_merged`]) prints no seqs, no shard ids
//! and no raw command sequence numbers — exactly the representational
//! noise that differs between serial and sharded runs — so a fixed-seed
//! scenario renders byte-identically in both modes (`trace_dump` in
//! `escra-bench`, gated by `scripts/check.sh`).

use escra_simcore::histogram::LogHistogram;
use escra_simcore::time::SimTime;
use std::fmt::Write as _;

/// Actor-key namespace tag for node-scoped events.
const ACTOR_NODE: u64 = 1 << 40;
/// Actor key of cluster-wide reclamation sweeps.
const ACTOR_SWEEP: u64 = 1 << 41;
/// Actor-key namespace tag for fault-injector edges.
const ACTOR_FAULT: u64 = 1 << 42;
/// Actor-key namespace tag for shard-channel events.
const ACTOR_SHARD: u64 = 1 << 43;

/// What happened, with the inputs that drove it. Ids are raw `u64`s
/// (`ContainerId::as_u64` etc.) so this crate needs no dependency on
/// the cluster substrate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEventKind {
    /// One node's telemetry batch entered the Controller.
    BatchIngest {
        /// Reporting node.
        node: u64,
        /// Entries in the batch.
        entries: u32,
    },
    /// The Allocator moved a container's CPU quota, with the windowed
    /// inputs that drove the decision (§IV-D1).
    CpuDecision {
        /// The container whose quota moved.
        container: u64,
        /// `true` for a scale-up (throttle reaction), `false` for a
        /// scale-down (slack reclaim).
        scale_up: bool,
        /// The quota after the decision, in cores.
        new_quota_cores: f64,
        /// Windowed throttle rate that fed the scale-up term.
        throttle_rate: f64,
        /// Windowed mean unused runtime (cores) that fed the
        /// scale-down term.
        unused_mean_cores: f64,
    },
    /// An OOM trap arrived at the Controller.
    OomTrap {
        /// The trapped container.
        container: u64,
        /// Bytes by which the charge exceeded the limit.
        shortfall_bytes: u64,
        /// The limit the container reported running with.
        current_limit_bytes: u64,
    },
    /// The pool covered an OOM: a grant went out.
    GrantIssued {
        /// The granted container.
        container: u64,
        /// Its new memory limit.
        new_limit_bytes: u64,
    },
    /// The OOM revealed a lost grant; the tracked limit was re-sent
    /// without touching the pool.
    GrantReconciled {
        /// The reconciled container.
        container: u64,
        /// The tracked limit that was re-sent.
        tracked_limit_bytes: u64,
    },
    /// The pool could not cover the OOM; a reclamation sweep was
    /// requested instead.
    GrantDenied {
        /// The still-trapped container.
        container: u64,
    },
    /// An unacked grant was re-sent after its timeout.
    GrantRetried {
        /// The container whose grant is unacked.
        container: u64,
        /// Which re-send this is (1-based).
        retries: u32,
    },
    /// An Agent acknowledged a grant.
    GrantAcked {
        /// The acked container.
        container: u64,
    },
    /// A grant exhausted its retries and was abandoned.
    GrantAbandoned {
        /// The abandoned container.
        container: u64,
    },
    /// Even reclamation could not cover the OOM: the container is
    /// OOM-killed.
    OomKill {
        /// The killed container.
        container: u64,
    },
    /// A cluster-wide reclamation sweep was launched.
    ReclaimSweep {
        /// Nodes the sweep covers.
        nodes: u32,
        /// The safe margin δ, in bytes.
        delta_bytes: u64,
    },
    /// The Controller credited a sweep result back to the books.
    ReclaimApplied {
        /// The shrunk container.
        container: u64,
        /// Its limit after the shrink.
        new_limit_bytes: u64,
        /// Bytes returned to the pool (ψ).
        psi_bytes: u64,
    },
    /// An Agent shrank a container during its sweep.
    ReclaimShrink {
        /// The shrunk container.
        container: u64,
        /// Its limit after the shrink.
        new_limit_bytes: u64,
        /// Bytes reclaimed (ψ).
        psi_bytes: u64,
    },
    /// An Agent discarded a duplicated/reordered command as stale.
    AgentStaleDrop {
        /// The command's target container.
        container: u64,
    },
    /// The Agent safety valve clamped a limit up to live usage.
    AgentValveClamp {
        /// The clamped container.
        container: u64,
        /// The limit the Controller asked for.
        limit_bytes: u64,
        /// The live usage it was clamped to.
        usage_bytes: u64,
    },
    /// The fault injector dropped a message.
    FaultDrop {
        /// Sender address (raw).
        from: u64,
        /// Receiver address (raw).
        to: u64,
        /// `true` when an active partition (not the loss probability)
        /// severed the message.
        partitioned: bool,
    },
    /// The fault injector added a delay spike.
    FaultDelay {
        /// Sender address (raw).
        from: u64,
        /// Receiver address (raw).
        to: u64,
        /// The extra delay, in microseconds.
        extra_us: u64,
    },
    /// The fault injector duplicated a message.
    FaultDuplicate {
        /// Sender address (raw).
        from: u64,
        /// Receiver address (raw).
        to: u64,
    },
    /// The router enqueued work onto a shard channel.
    ShardEnqueue {
        /// Target shard.
        shard: u32,
        /// Outstanding (undrained) work messages on that shard after
        /// the enqueue.
        depth: u32,
    },
    /// The router drained a shard's accumulated actions.
    ShardDequeue {
        /// Drained shard.
        shard: u32,
        /// Work messages enqueued since the previous drain.
        drained: u32,
    },
}

impl TraceEventKind {
    /// The entity this event is about, as a sort key namespace. Within
    /// one `(time, actor_key, class)` cell the recorder-local `seq` is
    /// the emission order in both the serial and the sharded
    /// Controller, which is what makes [`merge_events`] deterministic.
    pub fn actor_key(&self) -> u64 {
        use TraceEventKind::*;
        match *self {
            BatchIngest { node, .. } => ACTOR_NODE | node,
            CpuDecision { container, .. }
            | OomTrap { container, .. }
            | GrantIssued { container, .. }
            | GrantReconciled { container, .. }
            | GrantDenied { container }
            | GrantRetried { container, .. }
            | GrantAcked { container }
            | GrantAbandoned { container }
            | OomKill { container }
            | ReclaimApplied { container, .. }
            | ReclaimShrink { container, .. }
            | AgentStaleDrop { container }
            | AgentValveClamp { container, .. } => container,
            ReclaimSweep { .. } => ACTOR_SWEEP,
            FaultDrop { from, to, .. }
            | FaultDelay { from, to, .. }
            | FaultDuplicate { from, to } => ACTOR_FAULT | (from << 20) | to,
            ShardEnqueue { shard, .. } | ShardDequeue { shard, .. } => ACTOR_SHARD | shard as u64,
        }
    }

    /// Whether this event exists only in sharded runs (channel
    /// enqueue/dequeue). [`render_merged`] filters these out so the
    /// dump stays serial-vs-sharded comparable.
    pub fn is_shard_channel(&self) -> bool {
        matches!(
            self,
            TraceEventKind::ShardEnqueue { .. } | TraceEventKind::ShardDequeue { .. }
        )
    }

    /// A stable snake_case label for rendering and counting.
    pub fn label(&self) -> &'static str {
        use TraceEventKind::*;
        match self {
            BatchIngest { .. } => "batch_ingest",
            CpuDecision { .. } => "cpu_decision",
            OomTrap { .. } => "oom_trap",
            GrantIssued { .. } => "grant_issued",
            GrantReconciled { .. } => "grant_reconciled",
            GrantDenied { .. } => "grant_denied",
            GrantRetried { .. } => "grant_retried",
            GrantAcked { .. } => "grant_acked",
            GrantAbandoned { .. } => "grant_abandoned",
            OomKill { .. } => "oom_kill",
            ReclaimSweep { .. } => "reclaim_sweep",
            ReclaimApplied { .. } => "reclaim_applied",
            ReclaimShrink { .. } => "reclaim_shrink",
            AgentStaleDrop { .. } => "agent_stale_drop",
            AgentValveClamp { .. } => "agent_valve_clamp",
            FaultDrop { .. } => "fault_drop",
            FaultDelay { .. } => "fault_delay",
            FaultDuplicate { .. } => "fault_duplicate",
            ShardEnqueue { .. } => "shard_enqueue",
            ShardDequeue { .. } => "shard_dequeue",
        }
    }
}

/// One recorded decision: when, in which order on its recorder, what.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Simulated time of the decision.
    pub time: SimTime,
    /// Recorder-local monotonic sequence (stamped even for events the
    /// ring buffer subsequently drops, so gaps reveal overflow).
    pub seq: u64,
    /// What happened.
    pub kind: TraceEventKind,
}

/// Where instrumented components send their events.
///
/// The `ENABLED` constant lets call sites guard the (cheap, but not
/// free) event construction so that a [`NoopSink`] leaves the hot path
/// untouched — the idiomatic site is
/// `if S::ENABLED { sink.emit(now, kind) }`.
pub trait TraceSink {
    /// Whether this sink records anything. Call sites skip event
    /// construction entirely when this is `false`.
    const ENABLED: bool = true;

    /// Records one event.
    fn emit(&mut self, time: SimTime, kind: TraceEventKind);
}

/// The disabled sink: `ENABLED = false`, `emit` is an empty inline —
/// with it, instrumented code compiles to the uninstrumented code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn emit(&mut self, _time: SimTime, _kind: TraceEventKind) {}
}

/// A fixed-capacity ring buffer of [`TraceEvent`]s.
///
/// The buffer is allocated once at construction; recording never
/// allocates. On overflow the *oldest* event is overwritten and the
/// monotonic [`TraceRecorder::dropped`] counter advances, so a wrapped
/// trace is detectable and still merges deterministically.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    buf: Vec<TraceEvent>,
    cap: usize,
    /// Index of the oldest event once the buffer has wrapped.
    head: usize,
    dropped: u64,
    next_seq: u64,
    class: u16,
}

impl TraceRecorder {
    /// Creates a recorder holding at most `cap` events (class 0). A
    /// zero-capacity recorder counts drops but keeps nothing — that is
    /// also what [`TraceRecorder::default`] yields.
    pub fn with_capacity(cap: usize) -> Self {
        TraceRecorder {
            buf: Vec::with_capacity(cap),
            cap,
            head: 0,
            dropped: 0,
            next_seq: 0,
            class: 0,
        }
    }

    /// Tags this recorder with a merge class (builder style). Classes
    /// keep seqs of unrelated streams (controller / agent / fault
    /// injector) from being compared by [`merge_events`]; recorders of
    /// the same component must share a class.
    pub fn with_class(mut self, class: u16) -> Self {
        self.class = class;
        self
    }

    /// The merge class.
    pub fn class(&self) -> u16 {
        self.class
    }

    /// Maximum events held.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events lost to overflow since construction (monotonic).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever emitted into this recorder.
    pub fn emitted(&self) -> u64 {
        self.next_seq
    }

    /// Iterates the held events oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }

    fn record(&mut self, time: SimTime, kind: TraceEventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let ev = TraceEvent { time, seq, kind };
        if self.cap == 0 {
            self.dropped += 1;
        } else if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }
}

impl TraceSink for TraceRecorder {
    fn emit(&mut self, time: SimTime, kind: TraceEventKind) {
        self.record(time, kind);
    }
}

/// Merges any number of recorders into one canonical event stream (see
/// the module docs for why this is deterministic across serial and
/// sharded runs): stable sort by `(time, actor, class, seq)`, then
/// collapse adjacent identical cluster-wide sweeps at one instant.
pub fn merge_events(recorders: &[&TraceRecorder]) -> Vec<TraceEvent> {
    let mut tagged: Vec<(u16, TraceEvent)> = recorders
        .iter()
        .flat_map(|r| r.iter().map(|e| (r.class, *e)))
        .collect();
    tagged.sort_by(|a, b| {
        (a.1.time, a.1.kind.actor_key(), a.0, a.1.seq).cmp(&(
            b.1.time,
            b.1.kind.actor_key(),
            b.0,
            b.1.seq,
        ))
    });
    tagged.dedup_by(|cur, prev| {
        cur.1.time == prev.1.time
            && matches!(cur.1.kind, TraceEventKind::ReclaimSweep { .. })
            && cur.1.kind == prev.1.kind
    });
    tagged.into_iter().map(|(_, e)| e).collect()
}

/// Renders one event as a text line. Deliberately prints **no** seq and
/// no shard id — those are representational artefacts that differ
/// between serial and sharded runs of the same scenario.
pub fn render_line(e: &TraceEvent, out: &mut String) {
    use TraceEventKind::*;
    let _ = write!(out, "t={}us {}", e.time.as_micros(), e.kind.label());
    let _ = match e.kind {
        BatchIngest { node, entries } => write!(out, " node={node} entries={entries}"),
        CpuDecision {
            container,
            scale_up,
            new_quota_cores,
            throttle_rate,
            unused_mean_cores,
        } => write!(
            out,
            " container={container} up={} quota={new_quota_cores} throttle_rate={throttle_rate} unused_mean={unused_mean_cores}",
            u8::from(scale_up)
        ),
        OomTrap {
            container,
            shortfall_bytes,
            current_limit_bytes,
        } => write!(
            out,
            " container={container} shortfall={shortfall_bytes} limit={current_limit_bytes}"
        ),
        GrantIssued {
            container,
            new_limit_bytes,
        } => write!(out, " container={container} new_limit={new_limit_bytes}"),
        GrantReconciled {
            container,
            tracked_limit_bytes,
        } => write!(out, " container={container} tracked_limit={tracked_limit_bytes}"),
        GrantDenied { container }
        | GrantAcked { container }
        | GrantAbandoned { container }
        | OomKill { container }
        | AgentStaleDrop { container } => write!(out, " container={container}"),
        GrantRetried { container, retries } => {
            write!(out, " container={container} retries={retries}")
        }
        ReclaimSweep { nodes, delta_bytes } => write!(out, " nodes={nodes} delta={delta_bytes}"),
        ReclaimApplied {
            container,
            new_limit_bytes,
            psi_bytes,
        }
        | ReclaimShrink {
            container,
            new_limit_bytes,
            psi_bytes,
        } => write!(
            out,
            " container={container} new_limit={new_limit_bytes} psi={psi_bytes}"
        ),
        AgentValveClamp {
            container,
            limit_bytes,
            usage_bytes,
        } => write!(
            out,
            " container={container} asked={limit_bytes} clamped_to={usage_bytes}"
        ),
        FaultDrop {
            from,
            to,
            partitioned,
        } => write!(out, " from={from} to={to} partitioned={}", u8::from(partitioned)),
        FaultDelay { from, to, extra_us } => {
            write!(out, " from={from} to={to} extra_us={extra_us}")
        }
        FaultDuplicate { from, to } => write!(out, " from={from} to={to}"),
        ShardEnqueue { shard, depth } => write!(out, " shard={shard} depth={depth}"),
        ShardDequeue { shard, drained } => write!(out, " shard={shard} drained={drained}"),
    };
    out.push('\n');
}

/// Merges `recorders` and renders the comparable decision trace:
/// shard-channel events (which exist only in sharded runs) are
/// filtered out, everything else becomes one line per event.
pub fn render_merged(recorders: &[&TraceRecorder]) -> String {
    let events = merge_events(recorders);
    let mut out = String::new();
    for e in &events {
        if e.kind.is_shard_channel() {
            continue;
        }
        render_line(e, &mut out);
    }
    out
}

/// Pairs each [`TraceEventKind::OomTrap`] with the next grant
/// (issued or reconciled) for the same container and returns the
/// trap→grant decision latencies as a histogram, in milliseconds —
/// the paper's sub-second-reaction claim, measured per decision.
pub fn grant_latency_histogram(events: &[TraceEvent]) -> LogHistogram {
    let mut hist = LogHistogram::new();
    let mut open: Vec<(u64, SimTime)> = Vec::new();
    for e in events {
        match e.kind {
            TraceEventKind::OomTrap { container, .. }
                if !open.iter().any(|(c, _)| *c == container) =>
            {
                open.push((container, e.time));
            }
            TraceEventKind::GrantIssued { container, .. }
            | TraceEventKind::GrantReconciled { container, .. } => {
                if let Some(pos) = open.iter().position(|(c, _)| *c == container) {
                    let (_, trapped_at) = open.swap_remove(pos);
                    hist.record(e.time.duration_since(trapped_at).as_micros() as f64 / 1_000.0);
                }
            }
            _ => {}
        }
    }
    hist
}

/// Occurrences of each event label in `events`, sorted by label — a
/// compact summary for dumps and exposition.
pub fn kind_counts(events: &[TraceEvent]) -> Vec<(&'static str, u64)> {
    let mut counts: Vec<(&'static str, u64)> = Vec::new();
    for e in events {
        let label = e.kind.label();
        match counts.iter_mut().find(|(l, _)| *l == label) {
            Some((_, n)) => *n += 1,
            None => counts.push((label, 1)),
        }
    }
    counts.sort_by_key(|(l, _)| *l);
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(rec: &mut TraceRecorder, t: u64, container: u64) {
        rec.emit(
            SimTime::from_micros(t),
            TraceEventKind::GrantIssued {
                container,
                new_limit_bytes: 1,
            },
        );
    }

    #[test]
    fn ring_buffer_wraparound_drops_oldest_and_counts() {
        let mut r = TraceRecorder::with_capacity(4);
        for i in 0..10u64 {
            ev(&mut r, i, i);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.capacity(), 4);
        assert_eq!(r.dropped(), 6, "six oldest events overwritten");
        assert_eq!(r.emitted(), 10);
        // Survivors are the newest four, oldest → newest, seqs intact.
        let seqs: Vec<u64> = r.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        // The dropped counter is monotonic under further load.
        ev(&mut r, 10, 10);
        assert_eq!(r.dropped(), 7);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn zero_capacity_recorder_only_counts() {
        let mut r = TraceRecorder::default();
        ev(&mut r, 0, 0);
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 1);
        assert_eq!(r.emitted(), 1);
    }

    #[test]
    fn wrapped_traces_merge_deterministically_across_shards() {
        // Two "shards" each wrap their ring; the merged stream must be
        // a pure function of the recorder contents — same recorders,
        // same order, every time, and equal to a fresh identical pair.
        let build = || {
            let mut a = TraceRecorder::with_capacity(8);
            let mut b = TraceRecorder::with_capacity(8);
            for i in 0..40u64 {
                // Distinct actors per shard (app-affine containers).
                ev(&mut a, i, i % 3);
                ev(&mut b, i, 100 + i % 5);
            }
            assert!(a.dropped() > 0 && b.dropped() > 0);
            (a, b)
        };
        let (a1, b1) = build();
        let (a2, b2) = build();
        let m1 = merge_events(&[&a1, &b1]);
        let m2 = merge_events(&[&a2, &b2]);
        assert_eq!(m1, m2);
        assert_eq!(m1.len(), 16);
        // Time-ordered output.
        assert!(m1.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn merge_is_shard_split_invariant() {
        // One recorder with everything vs. the same events split across
        // two per-actor recorders (the app-affine sharding invariant):
        // identical merged streams.
        let mut whole = TraceRecorder::with_capacity(128);
        let mut left = TraceRecorder::with_capacity(64);
        let mut right = TraceRecorder::with_capacity(64);
        for t in 0..20u64 {
            for c in 0..4u64 {
                ev(&mut whole, t, c);
                if c % 2 == 0 {
                    ev(&mut left, t, c);
                } else {
                    ev(&mut right, t, c);
                }
            }
        }
        assert_eq!(
            strip_seqs(&merge_events(&[&whole])),
            strip_seqs(&merge_events(&[&left, &right]))
        );
        // Recorder order must not matter either.
        assert_eq!(
            strip_seqs(&merge_events(&[&left, &right])),
            strip_seqs(&merge_events(&[&right, &left]))
        );
    }

    fn strip_seqs(events: &[TraceEvent]) -> Vec<(SimTime, TraceEventKind)> {
        events.iter().map(|e| (e.time, e.kind)).collect()
    }

    #[test]
    fn duplicate_sweeps_collapse_to_one() {
        let sweep = TraceEventKind::ReclaimSweep {
            nodes: 4,
            delta_bytes: 50,
        };
        // Four shards all launch the periodic sweep at t = 5 s.
        let mut shards: Vec<TraceRecorder> =
            (0..4).map(|_| TraceRecorder::with_capacity(8)).collect();
        for s in &mut shards {
            s.emit(SimTime::from_secs(5), sweep);
            s.emit(SimTime::from_secs(10), sweep);
        }
        let refs: Vec<&TraceRecorder> = shards.iter().collect();
        let merged = merge_events(&refs);
        assert_eq!(merged.len(), 2, "one sweep per instant survives");
        // A sequential Controller emitting one sweep renders the same.
        let mut serial = TraceRecorder::with_capacity(8);
        serial.emit(SimTime::from_secs(5), sweep);
        serial.emit(SimTime::from_secs(10), sweep);
        assert_eq!(render_merged(&refs), render_merged(&[&serial]));
    }

    #[test]
    fn render_omits_seqs_and_filters_shard_channel_events() {
        let mut r = TraceRecorder::with_capacity(8);
        r.emit(
            SimTime::from_millis(100),
            TraceEventKind::ShardEnqueue { shard: 1, depth: 3 },
        );
        ev(&mut r, 200_000, 7);
        let text = render_merged(&[&r]);
        assert_eq!(text, "t=200000us grant_issued container=7 new_limit=1\n");
        assert!(!text.contains("seq"));
        // The raw line renderer still knows shard events (for debug dumps).
        let mut line = String::new();
        render_line(
            &TraceEvent {
                time: SimTime::ZERO,
                seq: 0,
                kind: TraceEventKind::ShardDequeue {
                    shard: 2,
                    drained: 9,
                },
            },
            &mut line,
        );
        assert_eq!(line, "t=0us shard_dequeue shard=2 drained=9\n");
    }

    #[test]
    fn noop_sink_is_disabled() {
        assert!(!NoopSink::ENABLED);
        assert!(TraceRecorder::ENABLED);
        // And emitting through it does nothing (compiles, runs, no-op).
        let mut s = NoopSink;
        s.emit(SimTime::ZERO, TraceEventKind::GrantDenied { container: 0 });
    }

    #[test]
    fn grant_latency_pairs_trap_with_next_grant() {
        let mut r = TraceRecorder::with_capacity(16);
        r.emit(
            SimTime::from_millis(100),
            TraceEventKind::OomTrap {
                container: 1,
                shortfall_bytes: 1,
                current_limit_bytes: 10,
            },
        );
        // An unrelated container's grant must not close the pair.
        ev(&mut r, 150_000, 2);
        r.emit(
            SimTime::from_millis(400),
            TraceEventKind::GrantIssued {
                container: 1,
                new_limit_bytes: 20,
            },
        );
        let hist = grant_latency_histogram(&merge_events(&[&r]));
        assert_eq!(hist.count(), 1);
        let p = hist.percentile(50.0);
        assert!((250.0..350.0).contains(&p), "latency ≈300 ms, got {p}");
    }

    #[test]
    fn kind_counts_summarise() {
        let mut r = TraceRecorder::with_capacity(8);
        ev(&mut r, 0, 0);
        ev(&mut r, 1, 1);
        r.emit(SimTime::ZERO, TraceEventKind::GrantDenied { container: 2 });
        let counts = kind_counts(&merge_events(&[&r]));
        assert_eq!(counts, vec![("grant_denied", 1), ("grant_issued", 2)]);
    }

    #[test]
    fn class_separates_unrelated_seq_streams() {
        // Controller (class 0) and agent (class 1) both log about one
        // container at the same instant with clashing seqs; the class
        // must order them deterministically regardless of seq values.
        let t = SimTime::from_millis(5);
        let mut ctl = TraceRecorder::with_capacity(8);
        for _ in 0..5 {
            // Burn seqs so the controller's event has a HIGHER seq.
            ctl.emit(SimTime::ZERO, TraceEventKind::GrantDenied { container: 99 });
        }
        ctl.emit(
            t,
            TraceEventKind::GrantIssued {
                container: 1,
                new_limit_bytes: 2,
            },
        );
        let mut agent = TraceRecorder::with_capacity(8).with_class(1);
        agent.emit(t, TraceEventKind::AgentStaleDrop { container: 1 });
        let merged = merge_events(&[&ctl, &agent]);
        let at_t: Vec<&'static str> = merged
            .iter()
            .filter(|e| e.time == t)
            .map(|e| e.kind.label())
            .collect();
        // Class 0 (controller) sorts before class 1 (agent) even though
        // its seq (5) is greater than the agent's (0).
        assert_eq!(at_t, vec!["grant_issued", "agent_stale_drop"]);
    }
}
