//! Vendored, offline stand-in for `serde_json`.
//!
//! Pretty-prints the `serde` shim's `Value` tree. Only the surface this
//! workspace uses is provided: [`to_string_pretty`] (and [`to_string`]),
//! both infallible in practice but returning `Result` for API parity.

use serde::{Serialize, Value};
use std::fmt;

/// Serialization error (never produced by this shim; exists for API parity).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => out.push_str(&format_float(*f)),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, indent, depth, "[", "]", items.len(), |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Object(pairs) => write_seq(out, indent, depth, "{", "}", pairs.len(), |out, i| {
            let (k, v) = &pairs[i];
            write_string(out, k);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(out, v, indent, depth + 1);
        }),
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: &str,
    close: &str,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push_str(open);
    if len == 0 {
        out.push_str(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push_str(close);
}

/// Formats floats the way serde_json does: integral values keep a
/// trailing `.0` (`1.0`, not `1`), non-finite values become `null`.
fn format_float(f: f64) -> String {
    if !f.is_finite() {
        return "null".to_string();
    }
    if f == f.trunc() && f.abs() < 1e15 {
        format!("{f:.1}")
    } else {
        let s = format!("{f}");
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integral_floats_keep_decimal_point() {
        assert_eq!(format_float(1.0), "1.0");
        assert_eq!(format_float(-2.0), "-2.0");
        assert_eq!(format_float(1.5), "1.5");
        assert_eq!(format_float(0.0), "0.0");
    }

    #[test]
    fn pretty_prints_nested_structures() {
        let v = vec![(1.0f64, 2.0f64)];
        let json = to_string_pretty(&v).unwrap();
        assert!(json.contains("1.0"));
        assert!(json.contains("2.0"));
        assert_eq!(json.matches('[').count(), 2);
    }

    #[test]
    fn compact_objects_have_no_whitespace() {
        let v = Value::Object(vec![("k".to_string(), Value::UInt(3))]);
        struct Wrap(Value);
        impl Serialize for Wrap {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        assert_eq!(to_string(&Wrap(v)).unwrap(), "{\"k\":3}");
    }

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        write_string(&mut out, "a\"b\\c\nd");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\"");
    }
}
