//! The checked protocol invariants.
//!
//! Two kinds: **step invariants** ([`check_step`]) must hold in every
//! reachable state, and **quiescence invariants** ([`check_quiescence`])
//! must hold after the state is *closed out* — every in-flight message
//! delivered fault-free and every armed timer allowed to fire. The
//! closure is what turns "a grant is currently unacked" (normal) into
//! "a grant is unacked and no mechanism will ever resolve it" (a bug):
//! the checker only flags divergence the protocol's own retry /
//! reconcile / abandon machinery cannot repair.

use crate::model::{Choice, World, APP};
use escra_cluster::ContainerId;
use escra_metrics::trace::TraceSink;

/// A violated invariant, with the numbers that witnessed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A running container's enforced memory limit is below its live
    /// usage — the agent's safety valve failed and the next charge of a
    /// single byte OOM-kills it.
    LimitBelowUsage {
        /// The endangered container.
        container: ContainerId,
        /// Its enforced limit.
        limit_bytes: u64,
        /// Its live usage.
        usage_bytes: u64,
    },
    /// The application pool's books disagree with the per-container
    /// tracks: Σ tracked memory limits ≠ pool allocated bytes. Grants
    /// were double-charged or released twice.
    MemPoolLeak {
        /// Σ of tracked per-container memory limits.
        tracked_sum_bytes: u64,
        /// The pool's allocated bytes.
        pool_allocated_bytes: u64,
    },
    /// The CPU side of the same conservation law, compared with a small
    /// float tolerance.
    CpuPoolLeak {
        /// Σ of tracked per-container quotas, in milli-cores (rounded).
        tracked_sum_millicores: u64,
        /// The pool's allocated cores, in milli-cores (rounded).
        pool_allocated_millicores: u64,
    },
    /// After closing the state out, `container` still has a pending
    /// (unacked, unabandoned) grant — the retry/abandon machine wedged.
    GrantUnresolved {
        /// The stranded container.
        container: ContainerId,
        /// The pending grant's seq.
        seq: u64,
    },
    /// After closing the state out, the controller's tracked limit and
    /// the enforced cgroup limit never converged, and no abandoned
    /// grant accounts for the gap: a limit update was silently lost.
    AckDivergence {
        /// The divergent container.
        container: ContainerId,
        /// The controller's tracked limit.
        tracked_bytes: u64,
        /// The limit actually enforced on the node.
        enforced_bytes: u64,
    },
    /// An agent's safety valve fired (it was asked to set a limit below
    /// live usage). In the modelled protocol per-container limits are
    /// monotone non-decreasing and usage never exceeds the enforced
    /// limit, so a correctly seq-disciplined agent **never** needs the
    /// valve — any clamp means a stale or out-of-order command reached
    /// the cgroup.
    ValveClamped {
        /// The node whose agent clamped.
        node: escra_cluster::NodeId,
        /// How many clamps it has performed.
        clamps: u64,
    },
    /// The fault-free closure did not drain the network within its
    /// round bound — messages regenerate forever (a livelock).
    ClosureDiverged {
        /// Messages still in flight when the bound was hit.
        in_flight: usize,
    },
}

impl core::fmt::Display for Violation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Violation::LimitBelowUsage {
                container,
                limit_bytes,
                usage_bytes,
            } => write!(
                f,
                "I1 limit-below-usage: {container} enforces {limit_bytes} B below live usage {usage_bytes} B"
            ),
            Violation::MemPoolLeak {
                tracked_sum_bytes,
                pool_allocated_bytes,
            } => write!(
                f,
                "I2 mem-pool-leak: Σ tracked limits {tracked_sum_bytes} B ≠ pool allocated {pool_allocated_bytes} B"
            ),
            Violation::CpuPoolLeak {
                tracked_sum_millicores,
                pool_allocated_millicores,
            } => write!(
                f,
                "I2 cpu-pool-leak: Σ tracked quotas {tracked_sum_millicores} mc ≠ pool allocated {pool_allocated_millicores} mc"
            ),
            Violation::GrantUnresolved { container, seq } => write!(
                f,
                "I3 grant-unresolved: {container} still has pending grant seq {seq} after closure"
            ),
            Violation::AckDivergence {
                container,
                tracked_bytes,
                enforced_bytes,
            } => write!(
                f,
                "I4 ack-divergence: {container} tracked {tracked_bytes} B vs enforced {enforced_bytes} B after closure (no abandon on the books)"
            ),
            Violation::ValveClamped { node, clamps } => write!(
                f,
                "I5 valve-clamped: agent on {node} clamped {clamps} stale limit(s) below live usage"
            ),
            Violation::ClosureDiverged { in_flight } => write!(
                f,
                "closure diverged: {in_flight} messages still in flight at the round bound"
            ),
        }
    }
}

/// Safety margin on the closure's delivery loop: far above anything a
/// bounded configuration can generate, so hitting it means livelock.
const CLOSURE_DELIVERY_GUARD: usize = 100_000;

/// Checks the step invariants of `world` (I1 limit ≥ usage, I2 pool
/// conservation, I5 valve silence). Returns the first violation found.
pub fn check_step<S: TraceSink>(world: &World<S>) -> Option<Violation> {
    // I1: a running container's enforced limit covers its live usage.
    // (Starting containers are re-charging their base set; terminated
    // ones keep stale cgroups nobody enforces.)
    for &cid in &world.containers {
        let c = world
            .cluster
            .container(cid)
            .expect("model containers persist");
        if c.is_running() && c.mem.limit_bytes() < c.mem.usage_bytes() {
            return Some(Violation::LimitBelowUsage {
                container: cid,
                limit_bytes: c.mem.limit_bytes(),
                usage_bytes: c.mem.usage_bytes(),
            });
        }
    }
    // I2: the pool's allocated figures equal the Σ of tracked grants.
    let alloc = world.controller.allocator();
    let pool = alloc.app_pool(APP).expect("model app is registered");
    let tracked_mem = alloc.tracked_mem_sum(APP);
    if tracked_mem != pool.allocated_mem_bytes() {
        return Some(Violation::MemPoolLeak {
            tracked_sum_bytes: tracked_mem,
            pool_allocated_bytes: pool.allocated_mem_bytes(),
        });
    }
    let to_mc = |cores: f64| (cores * 1000.0).round() as u64;
    let tracked_cpu = alloc.tracked_cpu_sum(APP);
    if (tracked_cpu - pool.allocated_cpu_cores()).abs() > 1e-6 {
        return Some(Violation::CpuPoolLeak {
            tracked_sum_millicores: to_mc(tracked_cpu),
            pool_allocated_millicores: to_mc(pool.allocated_cpu_cores()),
        });
    }
    // I5: the safety valve never fires under correct seq discipline —
    // limits are monotone per container and usage stays under the
    // enforced limit, so only a stale/reordered apply can trip it.
    for a in &world.agents {
        if a.valve_clamps() > 0 {
            return Some(Violation::ValveClamped {
                node: a.node(),
                clamps: a.valve_clamps(),
            });
        }
    }
    None
}

/// Closes a **clone** of `world` out fault-free and checks the
/// quiescence invariants (I3 no-lost-grant, I4 ack convergence).
///
/// The closure delivers every in-flight message (no drops, duplicates
/// already in the multiset still deliver — they are real traffic), and
/// runs the controller's timers until the retry/abandon machine settles:
///
/// * while grants are pending, advance by `grant_retry_timeout` so each
///   pending grant either gets re-sent (and the re-send delivered) or
///   abandoned;
/// * when only parked OOMs remain with an empty network, jump to the
///   next periodic reclaim so the sweep/kill path rescues them;
/// * bounded by `grant_max_retries + 4` timer rounds — enough for any
///   grant to exhaust its retries — so divergence is detected, not
///   looped on.
///
/// Convergence is judged on memory only: `tracked == enforced` for each
/// live tracked container, or `tracked > enforced` with at least one
/// abandoned grant on the books (the documented, counted degradation —
/// the next OOM event reconciles it). `tracked < enforced` is always a
/// violation: the agent enforces bytes the pool never granted. CPU
/// quota convergence is deliberately not checked — quota divergence is
/// repaired by the next telemetry report, a loop the model bounds
/// separately.
pub fn check_quiescence<S: TraceSink>(world: &World<S>) -> Option<Violation>
where
    World<S>: Clone,
{
    let mut w = world.clone();
    let max_rounds = w.cfg.escra.grant_max_retries + 4;
    let mut deliveries = 0usize;
    for _ in 0..=max_rounds {
        // Drain the network fault-free (responses may enqueue more).
        while !w.net.is_empty() {
            w.apply(Choice::Deliver(0));
            deliveries += 1;
            if deliveries > CLOSURE_DELIVERY_GUARD {
                return Some(Violation::ClosureDiverged {
                    in_flight: w.net.len(),
                });
            }
        }
        if w.controller.pending_grant_count() > 0 {
            // Let the retry timer fire (or abandon) and loop.
            let next = w.now + w.cfg.escra.grant_retry_timeout;
            w.clean_tick_to(next);
        } else if w.controller.pending_oom_count() > 0 {
            // Parked OOMs wait on the periodic reclaim loop; jump to it.
            let interval = w.cfg.escra.reclaim_interval;
            let next = w.now + interval;
            w.clean_tick_to(next);
        } else {
            break;
        }
    }
    if let Some((container, seq)) = first_pending_grant(&w) {
        return Some(Violation::GrantUnresolved { container, seq });
    }
    // I4: books vs nodes, per live tracked container.
    let abandons = w.controller.stats().grants_abandoned;
    let alloc = w.controller.allocator();
    for cid in alloc.container_ids() {
        let tracked = alloc.mem_limit_of(cid).expect("live id has a track");
        let Some(c) = w.cluster.container(cid) else {
            continue;
        };
        let enforced = c.mem.limit_bytes();
        if tracked == enforced {
            continue;
        }
        if tracked > enforced && abandons > 0 {
            // Documented degradation: the grant was abandoned after its
            // retries; the books keep the bytes and the next OOM event
            // reconciles. Counted, not silent.
            continue;
        }
        return Some(Violation::AckDivergence {
            container: cid,
            tracked_bytes: tracked,
            enforced_bytes: enforced,
        });
    }
    None
}

fn first_pending_grant<S: TraceSink>(w: &World<S>) -> Option<(ContainerId, u64)> {
    for &cid in &w.containers {
        if let Some(seq) = w.controller.pending_grant_seq(cid) {
            return Some((cid, seq));
        }
    }
    None
}

/// Step + quiescence in one call; the explorer runs this on every state.
pub fn check_all<S: TraceSink>(world: &World<S>) -> Option<Violation>
where
    World<S>: Clone,
{
    check_step(world).or_else(|| check_quiescence(world))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{McConfig, Mutation, World};

    #[test]
    fn initial_state_satisfies_everything() {
        let w = World::new(McConfig::smoke());
        assert_eq!(check_all(&w), None);
        let w = World::new(McConfig::tight_pool());
        assert_eq!(check_all(&w), None);
    }

    #[test]
    fn honest_oom_round_trip_stays_clean() {
        let mut w = World::new(McConfig::smoke());
        w.apply(Choice::Oom(0));
        assert_eq!(check_all(&w), None, "mid-flight OOM event");
        w.apply(Choice::Deliver(0));
        assert_eq!(check_all(&w), None, "grant in flight, pending");
        w.apply(Choice::Deliver(0));
        assert_eq!(check_all(&w), None, "ack in flight");
        w.apply(Choice::Deliver(0));
        assert_eq!(check_all(&w), None, "quiesced");
    }

    #[test]
    fn dropped_grant_is_rescued_by_the_retry_machine() {
        let mut w = World::new(McConfig::smoke());
        w.apply(Choice::Oom(0));
        w.apply(Choice::Deliver(0)); // grant goes in flight
        w.apply(Choice::Drop(0)); // ...and the network eats it
                                  // Right now tracked > enforced and the grant is pending — the
                                  // closure must let the retry timer repair it, not cry wolf.
        assert_eq!(check_all(&w), None);
    }

    #[test]
    fn seeded_stale_discard_skip_trips_the_valve() {
        // The stale_window hunt: two OOMs put two grants with different
        // limits (128 then 160 MiB) in flight; a duplicated copy of the
        // first, delivered after the second applied (and its charge
        // raised usage to 160 MiB), is stale. The honest agent discards
        // it; the mutated agent re-applies 128 MiB below live usage and
        // the safety valve fires — invariant I5.
        let script = |mutation: Mutation| {
            let mut w = World::new(McConfig::stale_window().with_mutation(mutation));
            w.apply(Choice::Oom(0)); // trap at 64/96 MiB
            w.apply(Choice::Deliver(0)); // grant #1 (128 MiB) in flight
            w.apply(Choice::Duplicate(0)); // two copies of it
            w.apply(Choice::Deliver(0)); // apply #1: limit 128, usage 112
            w.apply(Choice::Oom(0)); // trap again (16 MiB headroom)
            w.apply(Choice::Deliver(0)); // OomEvent #2 → grant #2 (160 MiB)
                                         // In flight (canonical order): [ack #1, stale 128 MiB copy,
                                         // grant #2] — acks sort before agent commands, 128 before 160.
            w.apply(Choice::Deliver(2)); // apply grant #2: usage 160 MiB
            w.apply(Choice::Deliver(2)); // the stale 128 MiB copy lands
            check_step(&w)
        };
        assert_eq!(script(Mutation::None), None, "honest agent discards it");
        assert!(
            matches!(
                script(Mutation::SkipStaleDiscard),
                Some(Violation::ValveClamped { clamps: 1, .. })
            ),
            "mutated agent re-applies the stale limit below usage"
        );
    }

    #[test]
    fn seeded_ack_seq_le_bug_loses_a_dropped_grant() {
        // The cross_kind hunt: a dropped memory grant stays pending (the
        // retry timer will re-send it) until a later CPU-quota ack —
        // whose seq is higher — arrives. The fixed controller requires
        // an exact seq match and keeps the grant pending; the mutated
        // one retires it (`pending.seq <= ack.seq`) and the closure
        // finds tracked > enforced with no abandon on the books.
        let script = |mutation: Mutation| {
            let mut w = World::new(McConfig::cross_kind().with_mutation(mutation));
            w.apply(Choice::Oom(0)); // trap
            w.apply(Choice::Deliver(0)); // OomEvent → grant in flight
            w.apply(Choice::Drop(0)); // the network eats the grant
            w.apply(Choice::CpuReport(0)); // throttled period
            w.apply(Choice::Deliver(0)); // stats → SetCpuQuota (seq + 1)
            w.apply(Choice::Deliver(0)); // quota applied, ack in flight
            w.apply(Choice::Deliver(0)); // the cross-kind ack lands
            check_all(&w)
        };
        assert_eq!(script(Mutation::None), None, "exact match keeps the grant");
        assert!(
            matches!(
                script(Mutation::AckClearsBySeqLe),
                Some(Violation::AckDivergence { .. })
            ),
            "seq <= match retires the pending grant and the limit is lost"
        );
    }
}
