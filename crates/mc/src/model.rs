//! The model: real control-plane state machines behind an enumerable
//! network, plus the branching transition relation.
//!
//! Nothing here re-implements protocol logic — the [`World`] steps the
//! production [`Controller`], [`Agent`] and [`Cluster`] (live memory
//! cgroups included) and only supplies what the checker must control:
//! which in-flight message moves next, when OOMs trap, when timers fire.
//! Known-bad protocol [`Mutation`]s can be seeded to prove the
//! invariants have teeth.

use escra_cfs::CpuPeriodStats;
use escra_cluster::{AppId, Cluster, ContainerId, ContainerSpec, ContainerState, NodeId, NodeSpec};
use escra_core::{
    Action, Agent, AgentReport, Controller, EscraConfig, ReclaimEntry, ToAgent, ToController,
};
use escra_metrics::fingerprint::{fingerprint128, Fingerprint, StateHash};
use escra_metrics::trace::{NoopSink, TraceEventKind, TraceSink};
use escra_net::inflight::{InFlightSet, WireEncode};
use escra_simcore::time::{SimDuration, SimTime};

/// The single application all model containers share (pool interaction
/// is the point of the exercise).
pub const APP: AppId = AppId::new(0);

const MIB: u64 = 1 << 20;

/// A bounded model-checking configuration: topology, memory geometry
/// and event budgets. Budgets bound the state space; the transition
/// relation can only *consume* them, so every exploration terminates.
#[derive(Debug, Clone, PartialEq)]
pub struct McConfig {
    /// Worker nodes, one [`Agent`] each (1–2 for tractable runs).
    pub agents: usize,
    /// Containers, placed round-robin over the nodes (1–3).
    pub containers: usize,
    /// The application pool's global memory limit.
    pub app_mem_bytes: u64,
    /// Initial per-container memory limit.
    pub container_mem_bytes: u64,
    /// Initial per-container memory usage.
    pub base_mem_bytes: u64,
    /// Bytes a container tries to charge when its OOM event fires.
    pub oom_chunk_bytes: u64,
    /// OOM firings allowed per container.
    pub ooms_per_container: u32,
    /// Fully-throttled CPU telemetry reports allowed per reporting
    /// container.
    pub cpu_reports_per_container: u32,
    /// How many containers (lowest indices first) emit CPU telemetry.
    /// One reporter is enough to exercise the cross-kind seq
    /// interleavings — its stats fan quota commands out to **every**
    /// container of the app — at a fraction of the state space of
    /// symmetric reporting (which is ~600× larger on the smoke
    /// geometry).
    pub cpu_report_containers: usize,
    /// Grant-retry timer firings allowed.
    pub ticks: u32,
    /// Message drops allowed.
    pub drops: u32,
    /// Message duplications allowed.
    pub duplicates: u32,
    /// Seeded protocol mutation ([`Mutation::None`] for the real thing).
    pub mutation: Mutation,
    /// The Escra tunables the controller runs with.
    pub escra: EscraConfig,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig::smoke()
    }
}

impl McConfig {
    /// The gated smoke configuration: 1 controller × 2 agents ×
    /// 2 containers with drop + duplicate + reorder branching, one OOM
    /// per container, one throttled CPU period on container 0, and
    /// enough pool to make every OOM grantable (violation-free by
    /// design).
    pub fn smoke() -> Self {
        McConfig {
            agents: 2,
            containers: 2,
            app_mem_bytes: 320 * MIB,
            container_mem_bytes: 96 * MIB,
            base_mem_bytes: 64 * MIB,
            oom_chunk_bytes: 48 * MIB,
            ooms_per_container: 1,
            cpu_reports_per_container: 1,
            cpu_report_containers: 1,
            ticks: 1,
            drops: 1,
            duplicates: 1,
            mutation: Mutation::None,
            escra: Self::escra_defaults(),
        }
    }

    /// A pool-starved variant: registration leaves only 8 MiB of
    /// headroom, so the first OOM is denied and the deny → sweep →
    /// retry → grant-or-kill path is explored too.
    pub fn tight_pool() -> Self {
        McConfig {
            app_mem_bytes: 200 * MIB,
            cpu_reports_per_container: 0,
            ..Self::smoke()
        }
    }

    /// The [`Mutation::SkipStaleDiscard`] hunt configuration: 1 agent ×
    /// 1 container with **two** OOM firings and a duplicate budget. Two
    /// OOMs before the first grant lands put two `SetMemLimit`s with
    /// different values (128 then 160 MiB) in flight at once; a
    /// duplicated copy of the first, delivered after the second, is
    /// exactly the stale message the seq check exists to discard — the
    /// mutated agent re-applies it (above live usage, so the safety
    /// valve stays quiet) and the books diverge at quiescence.
    pub fn stale_window() -> Self {
        McConfig {
            agents: 1,
            containers: 1,
            ooms_per_container: 2,
            cpu_reports_per_container: 0,
            cpu_report_containers: 0,
            ticks: 0,
            drops: 0,
            duplicates: 1,
            ..Self::smoke()
        }
    }

    /// The [`Mutation::AckClearsBySeqLe`] hunt configuration: 1 agent ×
    /// 1 container, one OOM, one throttled CPU period, one drop. The
    /// CPU ack's seq is higher than the pending memory grant's; when the
    /// grant itself is dropped, the mutated controller lets the CPU ack
    /// retire the grant (`pending.seq <= seq`) and the retry machine
    /// never fires — the lost limit is silent until quiescence flags it.
    pub fn cross_kind() -> Self {
        McConfig {
            agents: 1,
            containers: 1,
            ooms_per_container: 1,
            cpu_reports_per_container: 1,
            cpu_report_containers: 1,
            ticks: 0,
            drops: 1,
            duplicates: 0,
            ..Self::smoke()
        }
    }

    /// A deliberately tiny configuration (1 agent, 1 container, no CPU
    /// traffic) for debug-build property tests.
    pub fn tiny() -> Self {
        McConfig {
            agents: 1,
            containers: 1,
            cpu_reports_per_container: 0,
            ticks: 1,
            ..Self::smoke()
        }
    }

    /// The Escra tunables used by the model: paper defaults, except the
    /// periodic reclaim interval is pushed out to 10 min so proactive
    /// sweeps do not fire inside the (seconds-long) bounded horizon —
    /// the quiescence closure still advances to it when parked OOMs
    /// depend on the periodic loop — and grant retries are capped at 2
    /// to keep the retry/abandon tail short.
    pub fn escra_defaults() -> EscraConfig {
        EscraConfig {
            reclaim_interval: SimDuration::from_secs(600),
            grant_max_retries: 2,
            ..EscraConfig::default()
        }
    }

    /// Applies a mutation (builder style).
    pub fn with_mutation(mut self, mutation: Mutation) -> Self {
        self.mutation = mutation;
        self
    }
}

/// A seeded known-bad protocol variant, used to prove the invariants
/// catch real bugs (and as committed regressions for the two fixed
/// ones).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// The honest protocol.
    None,
    /// Agents skip the stale-seq discard: a reordered or duplicated old
    /// `SetMemLimit` rolls the enforced limit back below the tracked
    /// one after the grant's ack already retired it.
    SkipStaleDiscard,
    /// The controller clears a pending grant on any ack with
    /// `seq >= pending.seq` — the exact pre-fix `LimitAck` bug: the ack
    /// of a later CPU command retires an unapplied (dropped) memory
    /// grant and no retry ever fires.
    AckClearsBySeqLe,
}

/// An in-flight control-plane message.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Agent/container → Controller (telemetry, OOM events, acks).
    ToCtl(ToController),
    /// Controller → the Agent on a node (limit commands, sweeps).
    ToNode(NodeId, ToAgent),
    /// A finished reclamation sweep's report (modelled reliable: it is
    /// the response of the blocking sweep RPC — losing the call itself
    /// is modelled by dropping the `ReclaimMemory` command).
    Report(NodeId, Vec<ReclaimEntry>),
}

fn encode_to_ctl(m: &ToController, out: &mut Vec<u8>) {
    match m {
        ToController::Register {
            container,
            app,
            node,
        } => {
            out.push(0);
            out.extend(container.as_u64().to_le_bytes());
            out.extend(app.as_u64().to_le_bytes());
            out.extend(node.as_u64().to_le_bytes());
        }
        ToController::CpuStats { container, stats } => {
            out.push(1);
            out.extend(container.as_u64().to_le_bytes());
            encode_stats(stats, out);
        }
        ToController::CpuStatsBatch { node, entries } => {
            out.push(2);
            out.extend(node.as_u64().to_le_bytes());
            out.extend((entries.len() as u64).to_le_bytes());
            for e in entries {
                out.extend(e.container.as_u64().to_le_bytes());
                encode_stats(&e.stats, out);
            }
        }
        ToController::CpuStatsColumns { node, columns } => {
            out.push(5);
            out.extend(node.as_u64().to_le_bytes());
            out.extend((columns.len() as u64).to_le_bytes());
            for i in 0..columns.len() {
                out.extend((columns.container_raw[i] as u64).to_le_bytes());
                out.extend(columns.quota_mcores[i].to_le_bytes());
                out.extend(columns.unused_us[i].to_le_bytes());
                out.extend(columns.usage_us[i].to_le_bytes());
                out.push(columns.throttled_bit(i) as u8);
            }
        }
        ToController::OomEvent {
            container,
            shortfall_bytes,
            current_limit_bytes,
        } => {
            out.push(3);
            out.extend(container.as_u64().to_le_bytes());
            out.extend(shortfall_bytes.to_le_bytes());
            out.extend(current_limit_bytes.to_le_bytes());
        }
        ToController::LimitAck { container, seq } => {
            out.push(4);
            out.extend(container.as_u64().to_le_bytes());
            out.extend(seq.to_le_bytes());
        }
    }
}

fn encode_stats(s: &CpuPeriodStats, out: &mut Vec<u8>) {
    out.extend(s.quota_cores.to_bits().to_le_bytes());
    out.extend(s.unused_runtime_us.to_bits().to_le_bytes());
    out.extend(s.usage_us.to_bits().to_le_bytes());
    out.push(s.throttled as u8);
}

fn encode_to_agent(cmd: &ToAgent, out: &mut Vec<u8>) {
    match cmd {
        ToAgent::SetCpuQuota {
            container,
            quota_cores,
            seq,
        } => {
            out.push(0);
            out.extend(container.as_u64().to_le_bytes());
            out.extend(quota_cores.to_bits().to_le_bytes());
            out.extend(seq.to_le_bytes());
        }
        ToAgent::SetMemLimit {
            container,
            limit_bytes,
            seq,
        } => {
            out.push(1);
            out.extend(container.as_u64().to_le_bytes());
            out.extend(limit_bytes.to_le_bytes());
            out.extend(seq.to_le_bytes());
        }
        ToAgent::ReclaimMemory { delta_bytes } => {
            out.push(2);
            out.extend(delta_bytes.to_le_bytes());
        }
    }
}

impl WireEncode for Msg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Msg::ToCtl(m) => {
                out.push(0);
                encode_to_ctl(m, out);
            }
            Msg::ToNode(node, cmd) => {
                out.push(1);
                out.extend(node.as_u64().to_le_bytes());
                encode_to_agent(cmd, out);
            }
            Msg::Report(node, entries) => {
                out.push(2);
                out.extend(node.as_u64().to_le_bytes());
                out.extend((entries.len() as u64).to_le_bytes());
                for e in entries {
                    out.extend(e.container.as_u64().to_le_bytes());
                    out.extend(e.new_limit_bytes.to_le_bytes());
                    out.extend(e.psi_bytes.to_le_bytes());
                }
            }
        }
    }
}

/// One branching choice of the transition relation. Indices are over
/// the *distinct* in-flight messages in canonical order, or over the
/// model's containers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Choice {
    /// Deliver the i-th distinct in-flight message.
    Deliver(u8),
    /// The network loses one copy of the i-th distinct message.
    Drop(u8),
    /// The network duplicates the i-th distinct message.
    Duplicate(u8),
    /// Container `c` attempts its memory charge and (if short) traps.
    Oom(u8),
    /// Container `c` reports a fully-throttled CPU period.
    CpuReport(u8),
    /// The grant-retry timer fires (time advances by one timeout).
    Tick,
}

impl core::fmt::Display for Choice {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Choice::Deliver(i) => write!(f, "deliver#{i}"),
            Choice::Drop(i) => write!(f, "drop#{i}"),
            Choice::Duplicate(i) => write!(f, "dup#{i}"),
            Choice::Oom(c) => write!(f, "oom@c{c}"),
            Choice::CpuReport(c) => write!(f, "cpu@c{c}"),
            Choice::Tick => write!(f, "tick"),
        }
    }
}

/// One explorable control-plane state: the production state machines,
/// the in-flight multiset, and the remaining event budgets.
#[derive(Debug, Clone)]
pub struct World<S: TraceSink = NoopSink> {
    /// The configuration this world was built from.
    pub cfg: McConfig,
    /// The real cluster (nodes + containers with live cgroups).
    pub cluster: Cluster,
    /// The real Controller (books, pending grants, retry timers).
    pub controller: Controller<S>,
    /// One real Agent per node (seq maps, valve, sweeps).
    pub agents: Vec<Agent>,
    /// The network as a canonical multiset.
    pub net: InFlightSet<Msg>,
    /// Model time; advances only on [`Choice::Tick`].
    pub now: SimTime,
    /// Sink for agent-side and network-fault trace events (the
    /// controller records into its own embedded sink).
    pub side_sink: S,
    /// The model's container ids, in deploy order.
    pub containers: Vec<ContainerId>,
    /// Unsatisfied charge demand per container (bytes).
    pub want: Vec<u64>,
    oom_budget: Vec<u32>,
    cpu_budget: Vec<u32>,
    tick_budget: u32,
    drop_budget: u32,
    dup_budget: u32,
    /// Messages ever put in flight (stat only; excluded from hashing).
    pub msgs_sent: u64,
    /// Drop choices taken (stat only).
    pub msgs_dropped: u64,
    /// Duplicate choices taken (stat only).
    pub msgs_duplicated: u64,
}

impl World<NoopSink> {
    /// Builds the untraced initial state for exploration.
    pub fn new(cfg: McConfig) -> Self {
        World::with_sinks(cfg, NoopSink, NoopSink)
    }
}

impl<S: TraceSink> World<S> {
    /// Builds the initial state: containers deployed and running,
    /// controller bootstrapped (registration commands applied cleanly,
    /// outside the chaos), network empty, budgets full.
    pub fn with_sinks(cfg: McConfig, ctl_sink: S, side_sink: S) -> Self {
        let mut cluster = Cluster::new(
            (0..cfg.agents)
                .map(|_| NodeSpec {
                    cores: 16,
                    mem_bytes: 16 << 30,
                })
                .collect(),
        );
        let mut containers = Vec::new();
        for i in 0..cfg.containers {
            let id = cluster
                .deploy(
                    ContainerSpec::new(format!("c{i}"), APP)
                        .with_mem_limit(cfg.container_mem_bytes)
                        .with_base_mem(cfg.base_mem_bytes),
                    SimTime::ZERO,
                )
                .expect("deploy");
            containers.push(id);
        }
        let start = SimTime::from_secs(3);
        cluster.tick(start);
        let _ = cluster.drain_events();

        let mut controller = Controller::with_sink(cfg.escra.clone(), ctl_sink);
        controller.register_app(APP, cfg.agents as f64 * 8.0, cfg.app_mem_bytes);
        let mut agents: Vec<Agent> = (0..cfg.agents)
            .map(|i| Agent::new(NodeId::new(i as u64)))
            .collect();
        let mut side_sink = side_sink;
        for &id in &containers {
            let node = cluster.container(id).expect("deployed").node();
            let bootstrap = controller
                .register_container(id, APP, node, 1.0, cfg.container_mem_bytes)
                .expect("register");
            // Bootstrap commands apply synchronously: the initial sync
            // is not part of the explored chaos.
            for action in bootstrap {
                if let Action::Agent { node, cmd } = action {
                    let ai = node.as_u64() as usize;
                    let _ = agents[ai].apply_traced(start, &mut cluster, cmd, &mut side_sink);
                }
            }
        }

        let n = cfg.containers;
        World {
            cluster,
            controller,
            agents,
            net: InFlightSet::new(),
            now: start,
            side_sink,
            containers,
            want: vec![0; n],
            oom_budget: vec![cfg.ooms_per_container; n],
            cpu_budget: (0..n)
                .map(|i| {
                    if i < cfg.cpu_report_containers {
                        cfg.cpu_reports_per_container
                    } else {
                        0
                    }
                })
                .collect(),
            tick_budget: cfg.ticks,
            drop_budget: cfg.drops,
            dup_budget: cfg.duplicates,
            msgs_sent: 0,
            msgs_dropped: 0,
            msgs_duplicated: 0,
            cfg,
        }
    }

    fn index_of(&self, container: ContainerId) -> Option<usize> {
        self.containers.iter().position(|&c| c == container)
    }

    fn running(&self, idx: usize) -> bool {
        self.cluster
            .container(self.containers[idx])
            .is_some_and(|c| c.is_running())
    }

    /// Whether the i-th distinct message may be dropped/duplicated
    /// (sweep reports are modelled reliable, see [`Msg::Report`]).
    fn faultable(&self, i: usize) -> bool {
        !matches!(self.net.get(i).0, Msg::Report(..))
    }

    /// Enumerates every enabled transition of this state, in a
    /// deterministic order.
    pub fn enabled_choices(&self) -> Vec<Choice> {
        let mut out = Vec::new();
        let distinct = self.net.distinct_len();
        for i in 0..distinct {
            out.push(Choice::Deliver(i as u8));
        }
        if self.drop_budget > 0 {
            for i in 0..distinct {
                if self.faultable(i) {
                    out.push(Choice::Drop(i as u8));
                }
            }
        }
        if self.dup_budget > 0 {
            for i in 0..distinct {
                if self.faultable(i) {
                    out.push(Choice::Duplicate(i as u8));
                }
            }
        }
        for c in 0..self.containers.len() {
            if self.running(c) {
                if self.oom_budget[c] > 0 {
                    out.push(Choice::Oom(c as u8));
                }
                if self.cpu_budget[c] > 0 {
                    out.push(Choice::CpuReport(c as u8));
                }
            }
        }
        if self.tick_budget > 0 {
            out.push(Choice::Tick);
        }
        out
    }

    /// A human-readable description of what `choice` does in this state
    /// (used by counterexample scripts; call *before* [`World::apply`]).
    pub fn describe(&self, choice: Choice) -> String {
        let msg_at = |i: u8| {
            let (m, copies) = self.net.get(i as usize);
            if copies > 1 {
                format!("{m:?} (x{copies})")
            } else {
                format!("{m:?}")
            }
        };
        match choice {
            Choice::Deliver(i) => format!("deliver {}", msg_at(i)),
            Choice::Drop(i) => format!("drop {}", msg_at(i)),
            Choice::Duplicate(i) => format!("duplicate {}", msg_at(i)),
            Choice::Oom(c) => format!(
                "oom: container {} attempts +{} MiB",
                self.containers[c as usize],
                self.cfg.oom_chunk_bytes / MIB
            ),
            Choice::CpuReport(c) => {
                format!(
                    "cpu: container {} throttled period",
                    self.containers[c as usize]
                )
            }
            Choice::Tick => format!(
                "tick: now += {} ms (retry timer)",
                self.cfg.escra.grant_retry_timeout.as_micros() / 1000
            ),
        }
    }

    /// Applies one transition. The choice must come from
    /// [`World::enabled_choices`] of this exact state.
    pub fn apply(&mut self, choice: Choice) {
        match choice {
            Choice::Deliver(i) => {
                let msg = self.net.take(i as usize);
                self.deliver(msg);
            }
            Choice::Drop(i) => {
                let msg = self.net.take(i as usize);
                self.drop_budget -= 1;
                self.msgs_dropped += 1;
                if S::ENABLED {
                    let (from, to) = Self::addr_of(&msg);
                    self.side_sink.emit(
                        self.now,
                        TraceEventKind::FaultDrop {
                            from,
                            to,
                            partitioned: false,
                        },
                    );
                }
            }
            Choice::Duplicate(i) => {
                self.net.duplicate(i as usize);
                self.dup_budget -= 1;
                self.msgs_duplicated += 1;
                if S::ENABLED {
                    let (from, to) = Self::addr_of(self.net.get(i as usize).0);
                    self.side_sink
                        .emit(self.now, TraceEventKind::FaultDuplicate { from, to });
                }
            }
            Choice::Oom(c) => {
                let idx = c as usize;
                self.oom_budget[idx] -= 1;
                if self.want[idx] == 0 {
                    self.want[idx] = self.cfg.oom_chunk_bytes;
                }
                self.attempt_charge(idx, true);
            }
            Choice::CpuReport(c) => {
                let idx = c as usize;
                self.cpu_budget[idx] -= 1;
                let cid = self.containers[idx];
                let quota = self
                    .cluster
                    .container(cid)
                    .expect("model containers persist")
                    .cpu
                    .quota_cores();
                let period_us = self.cfg.escra.report_period.as_micros() as f64;
                self.send(Msg::ToCtl(ToController::CpuStats {
                    container: cid,
                    stats: CpuPeriodStats {
                        quota_cores: quota,
                        unused_runtime_us: 0.0,
                        usage_us: quota * period_us,
                        throttled: true,
                    },
                }));
            }
            Choice::Tick => {
                self.tick_budget -= 1;
                let next = self.now + self.cfg.escra.grant_retry_timeout;
                self.clean_tick_to(next);
            }
        }
    }

    /// Advances time to `t` fault-free: cluster lifecycle (restarts) and
    /// the controller's timers run; emitted commands go in flight.
    pub fn clean_tick_to(&mut self, t: SimTime) {
        self.now = t;
        self.cluster.tick(t);
        let actions = self.controller.tick(t);
        self.dispatch(actions);
    }

    fn send(&mut self, msg: Msg) {
        self.msgs_sent += 1;
        self.net.insert(msg);
    }

    fn addr_of(msg: &Msg) -> (u64, u64) {
        // Controller = 0, node n = 1 + n; good enough for trace lines.
        match msg {
            Msg::ToCtl(_) => (1, 0),
            Msg::ToNode(n, _) => (0, 1 + n.as_u64()),
            Msg::Report(n, _) => (1 + n.as_u64(), 0),
        }
    }

    /// Delivers a message to its destination, collecting any messages
    /// sent in response into the network.
    pub fn deliver(&mut self, msg: Msg) {
        match msg {
            Msg::ToCtl(mut m) => {
                if self.cfg.mutation == Mutation::AckClearsBySeqLe {
                    // Re-introduce the pre-fix `pending.seq <= seq` rule
                    // by rewriting any not-older ack to the pending seq.
                    if let ToController::LimitAck { container, seq } = m {
                        if let Some(p) = self.controller.pending_grant_seq(container) {
                            if p <= seq {
                                m = ToController::LimitAck { container, seq: p };
                            }
                        }
                    }
                }
                let mut actions = Vec::new();
                self.controller.handle_into(self.now, m, &mut actions);
                self.dispatch(actions);
            }
            Msg::ToNode(node, cmd) => {
                let ai = node.as_u64() as usize;
                if self.cfg.mutation == Mutation::SkipStaleDiscard {
                    match cmd {
                        ToAgent::SetCpuQuota { container, .. }
                        | ToAgent::SetMemLimit { container, .. } => {
                            // Wipe the high-water mark so the stale check
                            // always passes: the seeded bug.
                            self.agents[ai].forget_container(container);
                        }
                        ToAgent::ReclaimMemory { .. } => {}
                    }
                }
                let report = self.agents[ai].apply_traced(
                    self.now,
                    &mut self.cluster,
                    cmd,
                    &mut self.side_sink,
                );
                match (report, cmd) {
                    (AgentReport::Applied, ToAgent::SetMemLimit { container, seq, .. }) => {
                        // The ack is the response of the limit-update
                        // RPC; it travels the faulty network like any
                        // other message.
                        self.send(Msg::ToCtl(ToController::LimitAck { container, seq }));
                        // A raised limit may satisfy the trapped charge.
                        if let Some(idx) = self.index_of(container) {
                            self.attempt_charge(idx, false);
                        }
                    }
                    (AgentReport::Applied, ToAgent::SetCpuQuota { container, seq, .. }) => {
                        self.send(Msg::ToCtl(ToController::LimitAck { container, seq }));
                    }
                    (AgentReport::Reclaimed(entries), _) => {
                        self.send(Msg::Report(node, entries));
                    }
                    _ => {}
                }
            }
            Msg::Report(_node, entries) => {
                let actions = self.controller.on_reclaim_report(self.now, &entries);
                self.dispatch(actions);
            }
        }
    }

    fn dispatch(&mut self, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Agent { node, cmd } => self.send(Msg::ToNode(node, cmd)),
                Action::KillContainer(c) => {
                    let _ = self.cluster.oom_kill(c, self.now);
                    if let Some(idx) = self.index_of(c) {
                        // The kill resolves the trapped charge; no more
                        // OOMs from this container inside the bound.
                        self.want[idx] = 0;
                        self.oom_budget[idx] = 0;
                    }
                }
            }
        }
    }

    /// Retries container `idx`'s outstanding charge against its current
    /// enforced limit; when still short and `trap` is set, an
    /// [`ToController::OomEvent`] goes in flight (the kernel trap).
    fn attempt_charge(&mut self, idx: usize, trap: bool) {
        let want = self.want[idx];
        if want == 0 {
            return;
        }
        let cid = self.containers[idx];
        let Some(c) = self.cluster.container_mut(cid) else {
            return;
        };
        if !c.is_running() {
            return;
        }
        let limit = c.mem.limit_bytes();
        let usage = c.mem.usage_bytes();
        let headroom = limit.saturating_sub(usage);
        if headroom >= want {
            let outcome = c.mem.try_charge(want);
            debug_assert!(outcome.is_charged());
            self.want[idx] = 0;
        } else if trap {
            self.send(Msg::ToCtl(ToController::OomEvent {
                container: cid,
                shortfall_bytes: want - headroom,
                current_limit_bytes: limit,
            }));
        }
    }

    /// Folds every behaviourally relevant field into `h` (stat counters
    /// excluded). The schema is fixed; see the field-by-field comments.
    pub fn fingerprint_into(&self, h: &mut StateHash) {
        h.write_u64(self.now.as_micros());
        // Controller books: allocator pools + tracks, nodes, next_seq,
        // reclaim schedule, parked OOMs, pending grants.
        self.controller.fingerprint_into(h);
        // Agent seq maps, plus the valve counter: it backs invariant I5
        // (valve silence), so a clamped state must never be merged with
        // a clean one by the visited-set pruning.
        for a in &self.agents {
            a.fingerprint_into(h);
            h.write_u64(a.valve_clamps());
        }
        // Node-side truth: lifecycle, cgroup usage/limit/quota, and the
        // model's outstanding demand + budgets per container.
        for (idx, &cid) in self.containers.iter().enumerate() {
            let c = self
                .cluster
                .container(cid)
                .expect("model containers persist");
            match c.state() {
                ContainerState::Starting { ready_at } => {
                    h.write_u32(0);
                    h.write_u64(ready_at.as_micros());
                }
                ContainerState::Running => h.write_u32(1),
                ContainerState::Terminated => h.write_u32(2),
            }
            h.write_u64(c.mem.usage_bytes());
            h.write_u64(c.mem.limit_bytes());
            h.write_f64(c.cpu.quota_cores());
            h.write_u64(self.want[idx]);
            h.write_u32(self.oom_budget[idx]);
            h.write_u32(self.cpu_budget[idx]);
        }
        h.write_u32(self.tick_budget);
        h.write_u32(self.drop_budget);
        h.write_u32(self.dup_budget);
        // The in-flight multiset.
        self.net.fingerprint_into(h);
    }

    /// The 128-bit canonical fingerprint of this state.
    pub fn fingerprint(&self) -> Fingerprint {
        fingerprint128(|h| self.fingerprint_into(h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_is_deterministic_and_quiet() {
        let a = World::new(McConfig::smoke());
        let b = World::new(McConfig::smoke());
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert!(a.net.is_empty());
        assert_eq!(a.controller.pending_grant_count(), 0);
        // Bootstrap synced the books to the nodes.
        for &cid in &a.containers {
            assert_eq!(
                a.controller.allocator().mem_limit_of(cid),
                Some(a.cluster.container(cid).unwrap().mem.limit_bytes())
            );
        }
    }

    #[test]
    fn oom_then_grant_delivery_converges() {
        let mut w = World::new(McConfig::smoke());
        w.apply(Choice::Oom(0));
        assert_eq!(w.net.distinct_len(), 1, "OOM event in flight");
        w.apply(Choice::Deliver(0)); // controller grants
        assert_eq!(w.controller.pending_grant_count(), 1);
        w.apply(Choice::Deliver(0)); // agent applies, ack in flight
        w.apply(Choice::Deliver(0)); // ack retires the grant
        assert_eq!(w.controller.pending_grant_count(), 0);
        assert!(w.net.is_empty());
        // The charge went through at the raised limit.
        assert_eq!(w.want[0], 0);
        let c = w.cluster.container(w.containers[0]).unwrap();
        assert!(c.mem.usage_bytes() > w.cfg.base_mem_bytes);
    }

    #[test]
    fn fingerprint_distinguishes_branch_orders_but_not_paths_to_same_state() {
        let base = World::new(McConfig::smoke());
        // Two different first moves → different states.
        let mut a = base.clone();
        a.apply(Choice::Oom(0));
        let mut b = base.clone();
        b.apply(Choice::Oom(1));
        assert_ne!(a.fingerprint(), b.fingerprint());
        // Same two moves in either order → same state (both OOMs fired,
        // both events in flight).
        let mut ab = a.clone();
        ab.apply(Choice::Oom(1));
        let mut ba = b;
        ba.apply(Choice::Oom(0));
        assert_eq!(ab.fingerprint(), ba.fingerprint());
    }
}
