//! Exhaustive graph exploration: BFS / DFS over the branching
//! transition relation with canonical-fingerprint pruning.
//!
//! The frontier stores **paths** (choice sequences from the initial
//! state), not worlds: a popped entry is re-materialised by replaying
//! its path against a clone of the initial state. That trades CPU for
//! memory — a frontier of ten thousand entries is ten thousand small
//! `Vec<Choice>`s instead of ten thousand full control-plane clones —
//! and keeps every counterexample replayable for free, because the path
//! *is* the counterexample script.

use crate::invariants::{check_all, check_step, Violation};
use crate::model::{Choice, McConfig, World};
use escra_metrics::fingerprint::Fingerprint;
use std::collections::{BTreeSet, VecDeque};

/// Graph-exploration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Breadth-first: the first violation found has a minimal-length
    /// event script — the right default for debugging.
    Bfs,
    /// Depth-first: reaches deep states early with a small frontier.
    Dfs,
}

/// A replayable invariant violation: the exact choice sequence from the
/// initial state, and what broke at its end.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterExample {
    /// Choices from the initial state to the violating state.
    pub steps: Vec<Choice>,
    /// The invariant that failed there.
    pub violation: Violation,
}

/// What an exploration saw.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreResult {
    /// Distinct states visited (including the initial state).
    pub states: usize,
    /// Transitions taken (edges, including ones into already-visited
    /// states).
    pub transitions: usize,
    /// Longest path depth reached.
    pub max_depth: usize,
    /// The first violation found, if any (exploration stops on it).
    pub violation: Option<CounterExample>,
    /// The canonical fingerprints of every visited state. BFS and DFS
    /// must agree on this set when no violation cuts either short — the
    /// reachable closure of a finite graph does not depend on visit
    /// order (tests/mc_prop.rs holds them to it).
    pub fingerprints: BTreeSet<Fingerprint>,
}

/// Exhaustively explores every schedule of `cfg`'s bounded
/// configuration. The cheap per-state invariants (limit ≥ usage, pool
/// conservation — [`check_step`]) run in **every** distinct state; the
/// quiescence closure (grant resolution, ack convergence —
/// `check_quiescence`, which clones the world and drains it fault-free)
/// runs only in **terminal** states, where every budget is spent and
/// the network is empty. Every maximal schedule ends in a terminal
/// state, so nothing escapes the closure check — it just isn't re-run
/// on the interior states whose futures all funnel into the same
/// terminals. Stops at the first violation (under [`Strategy::Bfs`]
/// that yields a minimal counterexample) or when the reachable graph is
/// exhausted.
pub fn explore(cfg: &McConfig, strategy: Strategy) -> ExploreResult {
    let init = World::new(cfg.clone());
    let mut fingerprints = BTreeSet::new();
    fingerprints.insert(init.fingerprint());
    let mut result = ExploreResult {
        states: 1,
        transitions: 0,
        max_depth: 0,
        violation: None,
        fingerprints,
    };
    let init_choices = init.enabled_choices();
    let init_check = if init_choices.is_empty() {
        check_all(&init)
    } else {
        check_step(&init)
    };
    if let Some(v) = init_check {
        result.violation = Some(CounterExample {
            steps: Vec::new(),
            violation: v,
        });
        return result;
    }

    // Path frontier; entries are choice sequences from `init`.
    let mut frontier: VecDeque<Vec<Choice>> = VecDeque::new();
    if !init_choices.is_empty() {
        frontier.push_back(Vec::new());
    }

    while let Some(path) = match strategy {
        Strategy::Bfs => frontier.pop_front(),
        Strategy::Dfs => frontier.pop_back(),
    } {
        // Re-materialise the popped state by replaying its path.
        let mut world = init.clone();
        for &c in &path {
            world.apply(c);
        }
        for choice in world.enabled_choices() {
            let mut next = world.clone();
            next.apply(choice);
            result.transitions += 1;
            if !result.fingerprints.insert(next.fingerprint()) {
                continue; // seen (possibly via a different schedule)
            }
            result.states += 1;
            result.max_depth = result.max_depth.max(path.len() + 1);
            let mut next_path = path.clone();
            next_path.push(choice);
            let terminal = next.enabled_choices().is_empty();
            let check = if terminal {
                check_all(&next)
            } else {
                check_step(&next)
            };
            if let Some(v) = check {
                result.violation = Some(CounterExample {
                    steps: next_path,
                    violation: v,
                });
                return result;
            }
            if !terminal {
                frontier.push_back(next_path);
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::McConfig;

    #[test]
    fn tiny_config_explores_clean_and_deterministically() {
        let cfg = McConfig::tiny();
        let a = explore(&cfg, Strategy::Bfs);
        assert!(a.violation.is_none(), "violation: {:?}", a.violation);
        assert!(a.states > 1, "must actually branch");
        assert!(a.transitions >= a.states - 1);
        let b = explore(&cfg, Strategy::Bfs);
        assert_eq!(a, b, "exploration must be deterministic");
    }

    #[test]
    fn bfs_and_dfs_agree_on_the_reachable_set() {
        let cfg = McConfig::tiny();
        let bfs = explore(&cfg, Strategy::Bfs);
        let dfs = explore(&cfg, Strategy::Dfs);
        assert_eq!(bfs.violation, None);
        assert_eq!(dfs.violation, None);
        assert_eq!(bfs.fingerprints, dfs.fingerprints);
        assert_eq!(bfs.states, dfs.states);
        assert_eq!(bfs.transitions, dfs.transitions);
    }
}
