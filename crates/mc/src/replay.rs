//! Counterexample replay: re-run a choice script through the model with
//! live trace recorders and render the merged decision trace.
//!
//! An exploration's [`crate::explore::CounterExample`] is just a choice
//! sequence; on its own it says *what the scheduler did*, not *what the
//! protocol did*. [`replay`] re-executes the script in a traced world —
//! the controller records into a class-0 [`TraceRecorder`], agent-side
//! and network-fault events into a class-1 recorder — and renders both
//! through `render_merged`, yielding the same canonical trace format
//! the rest of the workspace uses (`trace_dump`, the microsim). It also
//! distils the script's fault decisions into a statistical
//! [`FaultPlan`], so the pathological schedule the checker found can be
//! re-run (approximately) against the full latency-fabric simulation.

use crate::invariants::{check_all, Violation};
use crate::model::{Choice, McConfig, World};
use escra_metrics::fingerprint::trace_fingerprint;
use escra_metrics::trace::{render_merged, TraceRecorder};
use escra_net::FaultPlan;

/// Events kept per recorder; model runs are short, so this never wraps.
const REPLAY_TRACE_CAP: usize = 4096;

/// The product of replaying one choice script.
#[derive(Debug, Clone)]
pub struct Replay {
    /// One human-readable line per step, describing the choice against
    /// the state it was applied to (message contents included).
    pub script: Vec<String>,
    /// The merged rendered decision trace (`render_merged` format):
    /// controller decisions, agent-side applications, network faults.
    pub trace: String,
    /// Order-sensitive fingerprint of `trace` — two runs of the same
    /// script must agree on it (determinism gate).
    pub trace_fp: u64,
    /// The invariant the final state violates, if any. Replaying a
    /// counterexample must reproduce its violation.
    pub violation: Option<Violation>,
    /// A statistical analogue of the script's fault choices (observed
    /// drop/duplicate rates), runnable against the `escra-net` fabric.
    pub fault_plan: FaultPlan,
}

/// Replays `steps` from `cfg`'s initial state with live trace
/// recorders. Steps must come from an exploration of the *same* config
/// (the model is deterministic, so they are valid by construction).
pub fn replay(cfg: &McConfig, steps: &[Choice]) -> Replay {
    let ctl_sink = TraceRecorder::with_capacity(REPLAY_TRACE_CAP);
    let side_sink = TraceRecorder::with_capacity(REPLAY_TRACE_CAP).with_class(1);
    let mut world = World::with_sinks(cfg.clone(), ctl_sink, side_sink);
    let mut script = Vec::with_capacity(steps.len());
    for (i, &choice) in steps.iter().enumerate() {
        debug_assert!(
            world.enabled_choices().contains(&choice),
            "step {i} ({choice}) is not enabled — script/config mismatch"
        );
        script.push(format!("{:>2}. {}", i + 1, world.describe(choice)));
        world.apply(choice);
    }
    let violation = check_all(&world);
    let fault_plan = fault_plan_of(&world);
    let ctl_rec = world.controller.replace_sink(TraceRecorder::default());
    let side_rec = std::mem::take(&mut world.side_sink);
    let trace = render_merged(&[&ctl_rec, &side_rec]);
    let trace_fp = trace_fingerprint(&trace);
    Replay {
        script,
        trace,
        trace_fp,
        violation,
        fault_plan,
    }
}

/// The observed drop/duplicate rates of a finished run, as a
/// [`FaultPlan`] for the randomized fabric.
fn fault_plan_of<S: escra_metrics::trace::TraceSink>(world: &World<S>) -> FaultPlan {
    if world.msgs_sent == 0 {
        return FaultPlan::none();
    }
    let sent = world.msgs_sent as f64;
    FaultPlan::none()
        .with_loss((world.msgs_dropped as f64 / sent).min(1.0))
        .with_duplicates((world.msgs_duplicated as f64 / sent).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::McConfig;

    #[test]
    fn replay_is_deterministic_and_traced() {
        let cfg = McConfig::smoke();
        // OOM → grant → duplicate the grant → apply copy #1 (ack goes in
        // flight; acks sort before agent commands, so index 0 is the ack)
        // → deliver the ack → deliver copy #2 (stale-discarded).
        let steps = [
            Choice::Oom(0),
            Choice::Deliver(0),
            Choice::Duplicate(0),
            Choice::Deliver(0),
            Choice::Deliver(0),
            Choice::Deliver(0),
        ];
        let a = replay(&cfg, &steps);
        let b = replay(&cfg, &steps);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.trace_fp, b.trace_fp);
        assert_eq!(a.script, b.script);
        assert_eq!(a.violation, None);
        // The trace shows the protocol, not just the schedule.
        assert!(a.trace.contains("oom_trap"), "trace:\n{}", a.trace);
        assert!(a.trace.contains("grant_issued"));
        assert!(a.trace.contains("fault_duplicate"));
        // Duplicate delivered second is stale-discarded by the agent.
        assert!(a.trace.contains("agent_stale_drop"));
        assert_eq!(a.script.len(), steps.len());
        // 1 duplicate out of >= 3 sends.
        assert!(a.fault_plan.duplicate_probability > 0.0);
        assert_eq!(a.fault_plan.drop_probability, 0.0);
    }

    #[test]
    fn empty_script_renders_empty_everything() {
        let r = replay(&McConfig::tiny(), &[]);
        assert!(r.script.is_empty());
        assert!(r.trace.is_empty());
        assert_eq!(r.violation, None);
        assert_eq!(r.fault_plan.drop_probability, 0.0);
    }
}
