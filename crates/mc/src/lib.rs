//! # escra-mc
//!
//! An explicit-state model checker for the Escra control-plane protocol
//! (the seq-numbered limit/ack commands and the OOM grant / retry /
//! reconcile / abandon machine), in the style of dslab-mp's BFS/DFS
//! strategies.
//!
//! The randomized fault plans of `escra-net` answer "does the protocol
//! survive *this* unlucky run?"; this crate answers "does it survive
//! *every* run of a small configuration?". A [`model::World`] wraps the
//! real production state machines — [`escra_core::Controller`],
//! [`escra_core::Agent`], a real [`escra_cluster::Cluster`] with live
//! memory cgroups — behind an [`escra_net::InFlightSet`] network, and
//! the explorer branches over every enabled event:
//!
//! * **Deliver(i)** — hand the i-th distinct in-flight message to its
//!   destination (picking *any* i models all reorderings);
//! * **Drop(i)** / **Duplicate(i)** — budgeted message faults;
//! * **Oom(c)** — container `c` attempts a memory charge and traps;
//! * **CpuReport(c)** — a fully-throttled telemetry period (its quota
//!   response shares the seq space with memory grants — the cross-kind
//!   interleaving that flushed out the ack-matching bug);
//! * **Tick** — the grant-retry timer fires.
//!
//! States are canonically hashed (128-bit FNV-1a over the allocator
//! books, agent seq maps, pending grants, cgroup state and the in-flight
//! multiset — see `escra_metrics::fingerprint`) into a visited set;
//! [`explore::explore`] runs BFS (minimal counterexamples) or DFS over
//! the graph and checks five invariants (see [`invariants`]): every
//! distinct state gets the cheap step checks — enforced limit ≥ live
//! usage, memory-pool conservation, and valve silence (the agent's
//! safety valve never fires under the honest protocol, so any clamp
//! proves a stale limit reached a cgroup) — while *terminal* states
//! (no enabled choice left) additionally get the quiescence closure:
//! drain the network fault-free, run the retry timers out, then demand
//! no unresolved grant and exact tracked-vs-enforced ack convergence.
//! Every maximal schedule ends in a terminal state, so the closure
//! checks miss nothing while keeping exploration tractable. A
//! violation yields a replayable [`explore::CounterExample`]
//! whose event script re-runs through the model with live
//! [`escra_metrics::trace::TraceRecorder`]s ([`replay::replay`]) and
//! renders via `render_merged`, plus a [`escra_net::FaultPlan`] analogue
//! for microsim robustness reruns.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod explore;
pub mod invariants;
pub mod model;
pub mod replay;

pub use explore::{explore, CounterExample, ExploreResult, Strategy};
pub use invariants::Violation;
pub use model::{Choice, McConfig, Msg, Mutation, World};
pub use replay::{replay, Replay};
