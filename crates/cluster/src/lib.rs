//! # escra-cluster
//!
//! A mini container-orchestrator substrate standing in for the
//! Kubernetes + Docker layer the paper deploys on:
//!
//! * [`ids`] — typed [`ids::NodeId`] / [`ids::ContainerId`] / [`ids::AppId`];
//! * [`node`] — worker nodes with core/memory capacity;
//! * [`container`] — container instances owning their CFS bandwidth and
//!   memory cgroups, with the start → run → OOM-kill → restart lifecycle
//!   (restarts carry the cold-start penalty that Escra's OOM trap avoids);
//! * [`cluster`] — the deployer (round-robin / least-loaded placement),
//!   the watcher event feed the Escra Container Watcher consumes, and
//!   cluster-wide OOM accounting (paper §VI-E).
//!
//! Execution (who gets CPU this period, what memory is charged) is driven
//! by the harness crate; this crate owns structure and lifecycle.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cluster;
pub mod container;
pub mod ids;
pub mod node;

pub use cluster::{Cluster, ClusterError, ContainerEvent, Placement};
pub use container::{Container, ContainerSpec, ContainerState};
pub use ids::{AppId, ContainerId, NodeId};
pub use node::{Node, NodeSpec};

/// Convenient re-exports of the most used types.
pub mod prelude {
    pub use crate::cluster::{Cluster, ClusterError, ContainerEvent, Placement};
    pub use crate::container::{Container, ContainerSpec, ContainerState};
    pub use crate::ids::{AppId, ContainerId, NodeId};
    pub use crate::node::{Node, NodeSpec};
}
