//! Container instances: cgroups plus lifecycle.

use crate::ids::{AppId, ContainerId, NodeId};
use escra_cfs::cpu::CpuBandwidth;
use escra_cfs::memory::MemCgroup;
use escra_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Static description of a container to deploy (the YAML the paper's
/// Application Deployer ingests, reduced to what the simulation needs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContainerSpec {
    /// Human-readable name, e.g. `"frontend"` or `"user-service-3"`.
    pub name: String,
    /// The application (Distributed Container) this container belongs to.
    pub app: AppId,
    /// Initial CPU limit in cores.
    pub cpu_limit_cores: f64,
    /// Initial memory limit in bytes.
    pub mem_limit_bytes: u64,
    /// Base (resident) memory footprint in bytes, charged at start.
    pub base_mem_bytes: u64,
    /// Time to restart after a kill (image pull + init), i.e. the cost an
    /// OOM kill inflicts that Escra's OOM trap avoids.
    pub restart_delay: SimDuration,
}

impl ContainerSpec {
    /// Creates a spec with sensible defaults: 1-core / 256 MiB limits,
    /// 64 MiB resident, 2 s restart delay.
    pub fn new(name: impl Into<String>, app: AppId) -> Self {
        ContainerSpec {
            name: name.into(),
            app,
            cpu_limit_cores: 1.0,
            mem_limit_bytes: 256 * escra_cfs::MIB,
            base_mem_bytes: 64 * escra_cfs::MIB,
            restart_delay: SimDuration::from_secs(2),
        }
    }

    /// Sets the initial CPU limit (builder style).
    pub fn with_cpu_limit(mut self, cores: f64) -> Self {
        self.cpu_limit_cores = cores;
        self
    }

    /// Sets the initial memory limit (builder style).
    pub fn with_mem_limit(mut self, bytes: u64) -> Self {
        self.mem_limit_bytes = bytes;
        self
    }

    /// Sets the resident memory footprint (builder style).
    pub fn with_base_mem(mut self, bytes: u64) -> Self {
        self.base_mem_bytes = bytes;
        self
    }

    /// Sets the restart delay (builder style).
    pub fn with_restart_delay(mut self, delay: SimDuration) -> Self {
        self.restart_delay = delay;
        self
    }
}

/// Lifecycle state of a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContainerState {
    /// Starting (cold start / restart); becomes `Running` at the instant.
    Starting {
        /// When the container becomes ready.
        ready_at: SimTime,
    },
    /// Running and schedulable.
    Running,
    /// Terminated and not coming back (scaled to zero or evicted).
    Terminated,
}

/// A live container instance: spec, placement, cgroups, lifecycle.
#[derive(Debug, Clone)]
pub struct Container {
    id: ContainerId,
    spec: ContainerSpec,
    node: NodeId,
    /// The CFS bandwidth cgroup (public within the workspace: the harness
    /// drives `consume`/`end_period` directly each simulated period).
    pub cpu: CpuBandwidth,
    /// The memory cgroup.
    pub mem: MemCgroup,
    state: ContainerState,
    oom_kills: u64,
    restarts: u64,
    created_at: SimTime,
}

impl Container {
    /// Creates a container in `Starting` state, ready after the spec's
    /// restart delay from `now` (initial cold start).
    pub fn new(id: ContainerId, spec: ContainerSpec, node: NodeId, now: SimTime) -> Self {
        let cpu = CpuBandwidth::new(spec.cpu_limit_cores);
        let mut mem = MemCgroup::new(spec.mem_limit_bytes);
        // Resident set charged up front; specs must be self-consistent.
        assert!(
            spec.base_mem_bytes <= spec.mem_limit_bytes,
            "base memory {} exceeds limit {} for {}",
            spec.base_mem_bytes,
            spec.mem_limit_bytes,
            spec.name
        );
        let charged = mem.try_charge(spec.base_mem_bytes);
        debug_assert!(charged.is_charged());
        Container {
            id,
            node,
            cpu,
            mem,
            state: ContainerState::Starting {
                ready_at: now + spec.restart_delay,
            },
            spec,
            oom_kills: 0,
            restarts: 0,
            created_at: now,
        }
    }

    /// The container's unique id.
    pub fn id(&self) -> ContainerId {
        self.id
    }

    /// The static spec.
    pub fn spec(&self) -> &ContainerSpec {
        &self.spec
    }

    /// The application this container belongs to.
    pub fn app(&self) -> AppId {
        self.spec.app
    }

    /// The node hosting this container.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Current lifecycle state.
    pub fn state(&self) -> ContainerState {
        self.state
    }

    /// Creation time.
    pub fn created_at(&self) -> SimTime {
        self.created_at
    }

    /// True if the container can execute work at `now` (running, or a
    /// start that has become ready — callers should [`Container::tick`]
    /// first to promote it).
    pub fn is_running(&self) -> bool {
        matches!(self.state, ContainerState::Running)
    }

    /// Number of OOM kills suffered.
    pub fn oom_kills(&self) -> u64 {
        self.oom_kills
    }

    /// Number of restarts (including after OOM kills).
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Advances lifecycle: promotes `Starting` to `Running` once ready.
    pub fn tick(&mut self, now: SimTime) {
        if let ContainerState::Starting { ready_at } = self.state {
            if now >= ready_at {
                self.state = ContainerState::Running;
            }
        }
    }

    /// OOM-kills the container: usage resets to the base footprint and the
    /// container restarts after its restart delay. This is the fate Escra's
    /// OOM trap avoids (vanilla autoscalers let it happen).
    pub fn oom_kill(&mut self, now: SimTime) {
        self.oom_kills += 1;
        self.restarts += 1;
        self.mem.reset_usage();
        let charged = self
            .mem
            .try_charge(self.spec.base_mem_bytes.min(self.mem.limit_bytes()));
        debug_assert!(charged.is_charged());
        self.state = ContainerState::Starting {
            ready_at: now + self.spec.restart_delay,
        };
    }

    /// Restarts the container without an OOM (a VPA-style resize, which
    /// cannot resize in place): usage resets to the base footprint and
    /// the container is unavailable for its restart delay.
    pub fn restart(&mut self, now: SimTime) {
        self.restarts += 1;
        self.mem.reset_usage();
        let charged = self
            .mem
            .try_charge(self.spec.base_mem_bytes.min(self.mem.limit_bytes()));
        debug_assert!(charged.is_charged());
        self.state = ContainerState::Starting {
            ready_at: now + self.spec.restart_delay,
        };
    }

    /// Terminates the container permanently (scale-to-zero / teardown).
    pub fn terminate(&mut self) {
        self.state = ContainerState::Terminated;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use escra_cfs::MIB;

    fn spec() -> ContainerSpec {
        ContainerSpec::new("c", AppId::new(0))
            .with_cpu_limit(2.0)
            .with_mem_limit(128 * MIB)
            .with_base_mem(32 * MIB)
            .with_restart_delay(SimDuration::from_secs(1))
    }

    #[test]
    fn starts_cold_then_runs() {
        let mut c = Container::new(ContainerId::new(1), spec(), NodeId::new(0), SimTime::ZERO);
        assert!(!c.is_running());
        c.tick(SimTime::from_millis(999));
        assert!(!c.is_running());
        c.tick(SimTime::from_secs(1));
        assert!(c.is_running());
        assert_eq!(c.mem.usage_bytes(), 32 * MIB);
    }

    #[test]
    fn oom_kill_resets_and_restarts() {
        let mut c = Container::new(ContainerId::new(1), spec(), NodeId::new(0), SimTime::ZERO);
        c.tick(SimTime::from_secs(1));
        c.mem.try_charge(64 * MIB);
        c.oom_kill(SimTime::from_secs(5));
        assert_eq!(c.oom_kills(), 1);
        assert_eq!(c.restarts(), 1);
        assert!(!c.is_running());
        assert_eq!(c.mem.usage_bytes(), 32 * MIB); // back to base
        c.tick(SimTime::from_secs(6));
        assert!(c.is_running());
    }

    #[test]
    fn terminate_is_permanent() {
        let mut c = Container::new(ContainerId::new(1), spec(), NodeId::new(0), SimTime::ZERO);
        c.terminate();
        c.tick(SimTime::from_secs(100));
        assert!(!c.is_running());
        assert_eq!(c.state(), ContainerState::Terminated);
    }

    #[test]
    #[should_panic(expected = "base memory")]
    fn inconsistent_spec_panics() {
        let bad = ContainerSpec::new("bad", AppId::new(0))
            .with_mem_limit(MIB)
            .with_base_mem(2 * MIB);
        Container::new(ContainerId::new(1), bad, NodeId::new(0), SimTime::ZERO);
    }

    #[test]
    fn builder_chains() {
        let s = spec();
        assert_eq!(s.cpu_limit_cores, 2.0);
        assert_eq!(s.mem_limit_bytes, 128 * MIB);
        assert_eq!(s.restart_delay, SimDuration::from_secs(1));
    }
}
