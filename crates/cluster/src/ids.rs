//! Typed identifiers for cluster entities.

use core::fmt;
use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(u64);

        impl $name {
            /// Wraps a raw index.
            pub const fn new(raw: u64) -> Self {
                $name(raw)
            }

            /// The raw index.
            pub const fn as_u64(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a worker node.
    NodeId,
    "node-"
);
id_type!(
    /// Identifies a container instance. IDs are never reused, even across
    /// restarts of the "same" pod, mirroring cgroup IDs.
    ContainerId,
    "ctr-"
);
id_type!(
    /// Identifies an application (the Distributed Container scope — all
    /// containers of one tenant/app share its global limits).
    AppId,
    "app-"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_prefix() {
        assert_eq!(NodeId::new(3).to_string(), "node-3");
        assert_eq!(ContainerId::new(12).to_string(), "ctr-12");
        assert_eq!(AppId::new(0).to_string(), "app-0");
    }

    #[test]
    fn roundtrip_and_ordering() {
        assert_eq!(ContainerId::new(7).as_u64(), 7);
        assert!(NodeId::new(1) < NodeId::new(2));
    }
}
