//! Worker nodes.

use crate::ids::{ContainerId, NodeId};
use serde::{Deserialize, Serialize};

/// Static capacity of a worker node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Number of physical cores.
    pub cores: u32,
    /// Physical memory in bytes.
    pub mem_bytes: u64,
}

impl NodeSpec {
    /// The paper's microservice worker: 2× Xeon Silver 4114 (20 cores) and
    /// 192 GB — scaled here to the logical capacity the experiments use.
    pub fn cloudlab_xl170() -> Self {
        NodeSpec {
            cores: 20,
            mem_bytes: 192 * 1024 * escra_cfs::MIB,
        }
    }
}

/// A worker node: capacity plus the containers placed on it.
#[derive(Debug, Clone)]
pub struct Node {
    id: NodeId,
    spec: NodeSpec,
    containers: Vec<ContainerId>,
}

impl Node {
    /// Creates an empty node.
    pub fn new(id: NodeId, spec: NodeSpec) -> Self {
        Node {
            id,
            spec,
            containers: Vec::new(),
        }
    }

    /// The node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's capacity spec.
    pub fn spec(&self) -> NodeSpec {
        self.spec
    }

    /// CPU capacity in core-microseconds per CFS period of `period_us`.
    pub fn cpu_capacity_us(&self, period_us: u64) -> f64 {
        self.spec.cores as f64 * period_us as f64
    }

    /// Containers currently placed on this node.
    pub fn containers(&self) -> &[ContainerId] {
        &self.containers
    }

    /// Number of containers on the node.
    pub fn container_count(&self) -> usize {
        self.containers.len()
    }

    /// Places a container (deployer use only).
    pub(crate) fn place(&mut self, c: ContainerId) {
        debug_assert!(!self.containers.contains(&c));
        self.containers.push(c);
    }

    /// Removes a container (teardown).
    pub(crate) fn evict(&mut self, c: ContainerId) {
        self.containers.retain(|x| *x != c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_math() {
        let n = Node::new(
            NodeId::new(0),
            NodeSpec {
                cores: 4,
                mem_bytes: 1 << 30,
            },
        );
        assert_eq!(n.cpu_capacity_us(100_000), 400_000.0);
    }

    #[test]
    fn place_and_evict() {
        let mut n = Node::new(NodeId::new(0), NodeSpec::cloudlab_xl170());
        n.place(ContainerId::new(1));
        n.place(ContainerId::new(2));
        assert_eq!(n.container_count(), 2);
        n.evict(ContainerId::new(1));
        assert_eq!(n.containers(), &[ContainerId::new(2)]);
    }

    #[test]
    fn cloudlab_profile() {
        let s = NodeSpec::cloudlab_xl170();
        assert_eq!(s.cores, 20);
        assert!(s.mem_bytes > 100 * (1 << 30));
    }
}
