//! The cluster: nodes + containers + deployer + watcher feed.
//!
//! Stands in for Kubernetes as used by the paper: the Application
//! Deployer creates containers, the Container Watcher observes creations
//! (to register them with the Escra Controller), and kills/restarts are
//! driven through the same object.

use crate::container::{Container, ContainerSpec, ContainerState};
use crate::ids::{ContainerId, NodeId};
use crate::node::{Node, NodeSpec};
use escra_simcore::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Placement strategy for new containers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Placement {
    /// Cycle through nodes in order (Kubernetes default-ish spreading).
    #[default]
    RoundRobin,
    /// Place on the node with the fewest containers.
    LeastLoaded,
}

/// Errors from cluster operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// The cluster has no nodes to place onto.
    NoNodes,
    /// Unknown container id.
    UnknownContainer(ContainerId),
}

impl core::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClusterError::NoNodes => write!(f, "cluster has no worker nodes"),
            ClusterError::UnknownContainer(id) => write!(f, "unknown container {id}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Lifecycle notifications consumed by watchers (the Escra Container
/// Watcher subscribes to `Created` to register containers with the
/// Controller).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainerEvent {
    /// A container was created and placed.
    Created(ContainerId, NodeId),
    /// A container was OOM-killed (and will restart).
    OomKilled(ContainerId),
    /// A container finished restarting and is running again.
    Restarted(ContainerId),
    /// A container was terminated permanently.
    Terminated(ContainerId),
}

/// A simulated cluster of worker nodes and containers.
///
/// ```
/// use escra_cluster::prelude::*;
/// use escra_simcore::time::SimTime;
///
/// let mut cluster = Cluster::new(vec![NodeSpec { cores: 4, mem_bytes: 1 << 32 }]);
/// let id = cluster
///     .deploy(ContainerSpec::new("web", AppId::new(0)), SimTime::ZERO)
///     .expect("deploy");
/// assert_eq!(cluster.container(id).expect("exists").node(), NodeId::new(0));
/// ```
#[derive(Debug, Clone)]
pub struct Cluster {
    nodes: Vec<Node>,
    containers: BTreeMap<ContainerId, Container>,
    next_container: u64,
    placement: Placement,
    rr_cursor: usize,
    events: Vec<(SimTime, ContainerEvent)>,
    total_oom_kills: u64,
}

impl Cluster {
    /// Creates a cluster with one node per spec and round-robin placement.
    pub fn new(node_specs: Vec<NodeSpec>) -> Self {
        let nodes = node_specs
            .into_iter()
            .enumerate()
            .map(|(i, s)| Node::new(NodeId::new(i as u64), s))
            .collect();
        Cluster {
            nodes,
            containers: BTreeMap::new(),
            next_container: 0,
            placement: Placement::RoundRobin,
            rr_cursor: 0,
            events: Vec::new(),
            total_oom_kills: 0,
        }
    }

    /// Sets the placement strategy (builder style).
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// The worker nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// A node by id.
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.as_u64() as usize)
    }

    /// All containers (including starting/terminated), in id order.
    pub fn containers(&self) -> impl Iterator<Item = &Container> {
        self.containers.values()
    }

    /// Mutable iterator over containers, in id order.
    pub fn containers_mut(&mut self) -> impl Iterator<Item = &mut Container> {
        self.containers.values_mut()
    }

    /// A container by id.
    pub fn container(&self, id: ContainerId) -> Option<&Container> {
        self.containers.get(&id)
    }

    /// A container by id, mutably.
    pub fn container_mut(&mut self, id: ContainerId) -> Option<&mut Container> {
        self.containers.get_mut(&id)
    }

    /// Number of containers ever deployed.
    pub fn container_count(&self) -> usize {
        self.containers.len()
    }

    /// Total OOM kills across the cluster's lifetime (§VI-E reports these).
    pub fn total_oom_kills(&self) -> u64 {
        self.total_oom_kills
    }

    /// Deploys a container, choosing a node per the placement strategy.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::NoNodes`] when the cluster is empty.
    pub fn deploy(
        &mut self,
        spec: ContainerSpec,
        now: SimTime,
    ) -> Result<ContainerId, ClusterError> {
        if self.nodes.is_empty() {
            return Err(ClusterError::NoNodes);
        }
        let node_idx = match self.placement {
            Placement::RoundRobin => {
                let i = self.rr_cursor % self.nodes.len();
                self.rr_cursor += 1;
                i
            }
            Placement::LeastLoaded => self
                .nodes
                .iter()
                .enumerate()
                .min_by_key(|(_, n)| n.container_count())
                .map(|(i, _)| i)
                .expect("non-empty"),
        };
        let id = ContainerId::new(self.next_container);
        self.next_container += 1;
        let node_id = self.nodes[node_idx].id();
        let container = Container::new(id, spec, node_id, now);
        self.nodes[node_idx].place(id);
        self.containers.insert(id, container);
        self.events
            .push((now, ContainerEvent::Created(id, node_id)));
        Ok(id)
    }

    /// OOM-kills a container (vanilla kernel behaviour when no Escra trap
    /// intervenes). The container restarts after its spec's delay.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownContainer`] for unknown ids.
    pub fn oom_kill(&mut self, id: ContainerId, now: SimTime) -> Result<(), ClusterError> {
        let c = self
            .containers
            .get_mut(&id)
            .ok_or(ClusterError::UnknownContainer(id))?;
        c.oom_kill(now);
        self.total_oom_kills += 1;
        self.events.push((now, ContainerEvent::OomKilled(id)));
        Ok(())
    }

    /// Terminates a container permanently and frees its node slot.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownContainer`] for unknown ids.
    pub fn terminate(&mut self, id: ContainerId, now: SimTime) -> Result<(), ClusterError> {
        let c = self
            .containers
            .get_mut(&id)
            .ok_or(ClusterError::UnknownContainer(id))?;
        let node = c.node();
        c.terminate();
        self.nodes[node.as_u64() as usize].evict(id);
        self.events.push((now, ContainerEvent::Terminated(id)));
        Ok(())
    }

    /// Advances all container lifecycles to `now` (promoting finished
    /// restarts) and emits `Restarted` events for promotions.
    pub fn tick(&mut self, now: SimTime) {
        for c in self.containers.values_mut() {
            let was_starting = matches!(c.state(), ContainerState::Starting { .. });
            c.tick(now);
            if was_starting && c.is_running() {
                self.events.push((now, ContainerEvent::Restarted(c.id())));
            }
        }
    }

    /// Drains pending lifecycle events (the watcher feed).
    pub fn drain_events(&mut self) -> Vec<(SimTime, ContainerEvent)> {
        std::mem::take(&mut self.events)
    }

    /// Containers on `node` that are currently running.
    pub fn running_on(&self, node: NodeId) -> Vec<ContainerId> {
        self.nodes
            .get(node.as_u64() as usize)
            .map(|n| {
                n.containers()
                    .iter()
                    .copied()
                    .filter(|id| self.containers[id].is_running())
                    .collect()
            })
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::AppId;

    fn small_cluster() -> Cluster {
        Cluster::new(vec![
            NodeSpec {
                cores: 4,
                mem_bytes: 8 << 30,
            },
            NodeSpec {
                cores: 4,
                mem_bytes: 8 << 30,
            },
        ])
    }

    fn spec(name: &str) -> ContainerSpec {
        ContainerSpec::new(name, AppId::new(0))
    }

    #[test]
    fn round_robin_spreads() {
        let mut cl = small_cluster();
        let a = cl.deploy(spec("a"), SimTime::ZERO).unwrap();
        let b = cl.deploy(spec("b"), SimTime::ZERO).unwrap();
        let c = cl.deploy(spec("c"), SimTime::ZERO).unwrap();
        assert_eq!(cl.container(a).unwrap().node(), NodeId::new(0));
        assert_eq!(cl.container(b).unwrap().node(), NodeId::new(1));
        assert_eq!(cl.container(c).unwrap().node(), NodeId::new(0));
    }

    #[test]
    fn least_loaded_fills_gaps() {
        let mut cl = small_cluster().with_placement(Placement::LeastLoaded);
        let a = cl.deploy(spec("a"), SimTime::ZERO).unwrap();
        let _b = cl.deploy(spec("b"), SimTime::ZERO).unwrap();
        cl.terminate(a, SimTime::ZERO).unwrap();
        let c = cl.deploy(spec("c"), SimTime::ZERO).unwrap();
        assert_eq!(cl.container(c).unwrap().node(), NodeId::new(0));
    }

    #[test]
    fn empty_cluster_errors() {
        let mut cl = Cluster::new(vec![]);
        assert_eq!(
            cl.deploy(spec("x"), SimTime::ZERO),
            Err(ClusterError::NoNodes)
        );
    }

    #[test]
    fn events_flow_through_watcher_feed() {
        let mut cl = small_cluster();
        let a = cl.deploy(spec("a"), SimTime::ZERO).unwrap();
        cl.tick(SimTime::from_secs(3)); // past the 2s cold start
        cl.oom_kill(a, SimTime::from_secs(4)).unwrap();
        let events = cl.drain_events();
        assert_eq!(events.len(), 3);
        assert!(matches!(events[0].1, ContainerEvent::Created(_, _)));
        assert!(matches!(events[1].1, ContainerEvent::Restarted(_)));
        assert!(matches!(events[2].1, ContainerEvent::OomKilled(_)));
        assert!(cl.drain_events().is_empty());
        assert_eq!(cl.total_oom_kills(), 1);
    }

    #[test]
    fn unknown_container_errors() {
        let mut cl = small_cluster();
        let bogus = ContainerId::new(99);
        assert_eq!(
            cl.oom_kill(bogus, SimTime::ZERO),
            Err(ClusterError::UnknownContainer(bogus))
        );
        let err = cl.terminate(bogus, SimTime::ZERO).unwrap_err();
        assert_eq!(err.to_string(), "unknown container ctr-99");
    }

    #[test]
    fn running_on_excludes_starting_and_terminated() {
        let mut cl = small_cluster();
        let a = cl.deploy(spec("a"), SimTime::ZERO).unwrap();
        let _b = cl.deploy(spec("b"), SimTime::ZERO).unwrap(); // node 1
        assert!(cl.running_on(NodeId::new(0)).is_empty()); // still starting
        cl.tick(SimTime::from_secs(3));
        assert_eq!(cl.running_on(NodeId::new(0)), vec![a]);
        cl.terminate(a, SimTime::from_secs(4)).unwrap();
        assert!(cl.running_on(NodeId::new(0)).is_empty());
    }
}
