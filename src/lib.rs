//! # escra
//!
//! A comprehensive Rust reproduction of *"Escra: Event-driven,
//! Sub-second Container Resource Allocation"* (ICDCS 2022).
//!
//! Escra replaces coarse-grained container autoscaling (VPA, Autopilot)
//! with an event-driven control plane: kernel hooks in the CFS bandwidth
//! controller stream **per-period telemetry** (quota, unused runtime,
//! throttled) to a logically centralized Controller; a lightweight
//! Resource Allocator rescales container quotas **as often as every
//! 100 ms**; a `try_charge()` hook traps **OOM events before the kill**
//! so memory can be granted from a per-application pool; and a
//! **Distributed Container** enforces aggregate per-tenant limits at
//! runtime across hosts.
//!
//! This crate is an umbrella over the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `escra-core` | Controller, Resource Allocator, Agent, Distributed Container |
//! | [`cfs`] | `escra-cfs` | simulated CFS bandwidth control + memory cgroups |
//! | [`cluster`] | `escra-cluster` | nodes, containers, deployer, watcher |
//! | [`net`] | `escra-net` | control-plane fabric + bandwidth accounting |
//! | [`baselines`] | `escra-baselines` | Static, Autopilot recreation, VPA, tiny autoscaler, ARC-V |
//! | [`workloads`] | `escra-workloads` | the paper's apps, workloads, serverless substrate |
//! | [`metrics`] | `escra-metrics` | latency/slack recorders, report tables |
//! | [`harness`] | `escra-harness` | the experiment runners |
//! | [`simcore`] | `escra-simcore` | deterministic DES core |
//! | [`mc`] | `escra-mc` | explicit-state model checker for the limit/ack/grant protocol |
//!
//! ## Example
//!
//! ```
//! use escra::harness::{run, MicroSimConfig, Policy};
//! use escra::simcore::time::SimDuration;
//! use escra::workloads::{teastore, WorkloadKind};
//!
//! let cfg = MicroSimConfig::new(
//!     teastore(),
//!     WorkloadKind::Fixed { rps: 100.0 },
//!     Policy::escra_default(),
//!     7,
//! )
//! .with_duration(SimDuration::from_secs(5));
//! let out = run(&cfg);
//! assert!(out.metrics.throughput() > 50.0);
//! assert_eq!(out.metrics.oom_kills, 0);
//! ```
//!
//! See `DESIGN.md` for the system inventory and per-experiment index and
//! `EXPERIMENTS.md` for paper-vs-measured results; every table and
//! figure of the paper has a regenerating binary in `escra-bench`.

#![warn(missing_docs)]

pub use escra_baselines as baselines;
pub use escra_cfs as cfs;
pub use escra_cluster as cluster;
pub use escra_core as core;
pub use escra_harness as harness;
pub use escra_mc as mc;
pub use escra_metrics as metrics;
pub use escra_net as net;
pub use escra_simcore as simcore;
pub use escra_workloads as workloads;
