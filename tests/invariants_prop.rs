//! Property-based tests on the core data structures and allocation
//! invariants.

use escra::cfs::node::{arbitrate, arbitrate_weighted};
use escra::cfs::{ChargeOutcome, CpuBandwidth, MemCgroup};
use escra::cluster::{AppId, ContainerId, NodeId};
use escra::core::allocator::ResourceAllocator;
use escra::core::telemetry::ToController;
use escra::core::{Action, Controller, CpuStatsEntry, EscraConfig, ToAgent};
use escra::net::{Addr, FaultDecision, FaultInjector, FaultPlan};
use escra::simcore::histogram::LogHistogram;
use escra::simcore::stats::percentile;
use escra::simcore::time::{SimDuration, SimTime};
use proptest::prelude::*;
use std::collections::BTreeMap;

proptest! {
    /// Max–min arbitration: conserving, bounded by demand, and
    /// work-conserving when oversubscribed.
    #[test]
    fn arbitrate_is_fair_and_conserving(
        capacity in 0.0f64..1_000.0,
        demands in proptest::collection::vec(0.0f64..500.0, 0..20),
    ) {
        let grants = arbitrate(capacity, &demands);
        prop_assert_eq!(grants.len(), demands.len());
        let total: f64 = grants.iter().sum();
        prop_assert!(total <= capacity + 1e-6);
        for (g, d) in grants.iter().zip(demands.iter()) {
            prop_assert!(*g >= -1e-12 && *g <= d + 1e-9);
        }
        let want: f64 = demands.iter().sum();
        if want > capacity {
            prop_assert!((total - capacity).abs() < 1e-6, "work conserving");
        } else {
            prop_assert!((total - want).abs() < 1e-6, "fully satisfied");
        }
    }

    /// Weighted arbitration degenerates to the unweighted one for equal
    /// weights.
    #[test]
    fn weighted_equals_unweighted_for_equal_weights(
        capacity in 0.0f64..100.0,
        demands in proptest::collection::vec(0.0f64..50.0, 1..10),
    ) {
        let w = vec![1.0; demands.len()];
        let a = arbitrate(capacity, &demands);
        let b = arbitrate_weighted(capacity, &demands, &w);
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    /// CFS bandwidth accounting: usage never exceeds quota per period and
    /// the throttle flag is exactly "asked for more than remained".
    #[test]
    fn cfs_usage_bounded_by_quota(
        quota in 0.05f64..16.0,
        requests in proptest::collection::vec(0.0f64..100_000.0, 1..20),
    ) {
        let mut bw = CpuBandwidth::new(quota);
        let mut wanted = 0.0;
        for r in &requests {
            wanted += r;
            bw.consume(*r);
        }
        let stats = bw.end_period();
        let quota_us = quota * 100_000.0;
        prop_assert!(stats.usage_us <= quota_us + 1e-6);
        prop_assert!((stats.usage_us + stats.unused_runtime_us - quota_us).abs() < 1e-6);
        prop_assert_eq!(stats.throttled, wanted > quota_us + 1e-9);
    }

    /// Memory cgroup: charges and uncharges never corrupt accounting and
    /// a would-OOM leaves usage untouched.
    #[test]
    fn mem_cgroup_accounting(
        limit_mib in 1u64..1024,
        ops in proptest::collection::vec((any::<bool>(), 0u64..512), 1..50),
    ) {
        let limit = limit_mib * 1024 * 1024;
        let mut m = MemCgroup::new(limit);
        let mut shadow: u64 = 0;
        for (charge, mib) in ops {
            let bytes = mib * 1024 * 1024;
            if charge {
                match m.try_charge(bytes) {
                    ChargeOutcome::Charged => shadow += bytes,
                    ChargeOutcome::WouldOom { shortfall_bytes } => {
                        prop_assert_eq!(shadow + bytes - limit, shortfall_bytes);
                    }
                }
            } else {
                m.uncharge(bytes);
                shadow = shadow.saturating_sub(bytes);
            }
            prop_assert_eq!(m.usage_bytes(), shadow);
            prop_assert!(m.usage_bytes() <= m.limit_bytes());
        }
    }

    /// The allocator's pool accounting is conserved under arbitrary
    /// telemetry: Σ tracked quotas == pool allocated, never above Ω.
    #[test]
    fn allocator_conserves_the_pool(
        omega in 2.0f64..64.0,
        events in proptest::collection::vec(
            (0u64..8, 0.0f64..4.0, any::<bool>()),
            1..200,
        ),
    ) {
        let app = AppId::new(0);
        let mut alloc = ResourceAllocator::new(EscraConfig::default());
        alloc.register_app(app, omega, 8 << 30);
        for i in 0..8u64 {
            alloc
                .register_container(
                    ContainerId::new(i),
                    app,
                    NodeId::new(i % 3),
                    omega / 8.0,
                    128 << 20,
                )
                .expect("register");
        }
        for (cid, usage, throttled) in events {
            let container = ContainerId::new(cid);
            let quota = alloc.quota_of(container).expect("tracked");
            let usage = usage.min(quota);
            let stats = escra::cfs::CpuPeriodStats {
                quota_cores: quota,
                usage_us: usage * 100_000.0,
                unused_runtime_us: (quota - usage) * 100_000.0,
                throttled,
            };
            alloc.on_cpu_stats(container, stats).expect("tracked");
            let pool = alloc.app_pool(app).expect("app");
            let tracked = alloc.tracked_cpu_sum(app);
            prop_assert!((tracked - pool.allocated_cpu_cores()).abs() < 1e-6);
            prop_assert!(tracked <= omega + 1e-6);
            prop_assert!(alloc.quota_of(container).expect("tracked") >= 0.05 - 1e-9);
        }
    }

    /// Memory pool conservation under OOM grants and reclamation.
    #[test]
    fn allocator_mem_pool_conserved(
        ops in proptest::collection::vec((0u64..4, 0u64..256, any::<bool>()), 1..100),
    ) {
        let app = AppId::new(0);
        let global: u64 = 4 << 30;
        let mut alloc = ResourceAllocator::new(EscraConfig::default());
        alloc.register_app(app, 8.0, global);
        for i in 0..4u64 {
            alloc
                .register_container(ContainerId::new(i), app, NodeId::new(0), 1.0, 512 << 20)
                .expect("register");
        }
        for (cid, mib, grow) in ops {
            let container = ContainerId::new(cid);
            if grow {
                let _ = alloc.on_oom(container, mib * 1024 * 1024);
            } else {
                let current = alloc.mem_limit_of(container).expect("tracked");
                let target = current.saturating_sub(mib * 1024 * 1024).max(1);
                alloc.apply_reclaim(container, target).expect("tracked");
            }
            let pool = alloc.app_pool(app).expect("app");
            prop_assert_eq!(alloc.tracked_mem_sum(app), pool.allocated_mem_bytes());
            prop_assert!(pool.allocated_mem_bytes() <= global);
        }
    }

    /// The Controller's pool books are conserved under an arbitrarily
    /// faulty control plane: whatever the fabric drops, duplicates or
    /// delays, after every event Σ tracked CPU quotas equals the pool's
    /// allocated total and never exceeds Ω, and likewise for memory.
    ///
    /// The "world" here is a shadow of the Agents: per-container applied
    /// limits behind a [`FaultInjector`], with the same per-resource
    /// sequence filtering a real Agent does. OOM events report the
    /// *shadow* limit, so lost grants genuinely surface as stale
    /// `current_limit_bytes` and exercise reconciliation and retry.
    #[test]
    fn controller_books_survive_a_faulty_control_plane(
        seed in any::<u64>(),
        loss in 0.0f64..0.6,
        dup in 0.0f64..0.4,
        spike in 0.0f64..0.4,
        events in proptest::collection::vec(
            (0u64..6, 0.0f64..1.5, any::<bool>(), any::<bool>()),
            1..120,
        ),
    ) {
        const N: u64 = 6;
        let omega = 12.0f64;
        let global_mem: u64 = 4 << 30;
        let app = AppId::new(0);
        let mut ctl = Controller::new(EscraConfig::default());
        ctl.register_app(app, omega, global_mem);

        // Shadow Agent state: applied (quota, limit) + last seq per resource.
        let mut shadow_mem: BTreeMap<ContainerId, (u64, u64)> = BTreeMap::new();
        let mut shadow_cpu_seq: BTreeMap<ContainerId, u64> = BTreeMap::new();
        for i in 0..N {
            let cid = ContainerId::new(i);
            let actions = ctl
                .register_container(cid, app, NodeId::new(i % 2), omega / N as f64, 256 << 20)
                .expect("register");
            for a in actions {
                if let Action::Agent { cmd: ToAgent::SetMemLimit { limit_bytes, seq, .. }, .. } = a {
                    shadow_mem.insert(cid, (limit_bytes, seq));
                }
            }
        }

        let plan = FaultPlan::none()
            .with_loss(loss)
            .with_duplicates(dup)
            .with_delay_spikes(spike, SimDuration::from_millis(700));
        let mut fabric = FaultInjector::new(plan, seed);
        let ctl_addr = Addr::from_raw(0);
        let node_addr = |n: NodeId| Addr::from_raw(1 + n.as_u64());

        let mut now = SimTime::ZERO;
        let mut acks: Vec<ToController> = Vec::new();
        for (cid, usage_frac, throttled, oom) in events {
            now += SimDuration::from_millis(100);
            let container = ContainerId::new(cid % N);
            let msg = if oom {
                let (limit, _) = shadow_mem[&container];
                ToController::OomEvent {
                    container,
                    shortfall_bytes: 8 << 20,
                    current_limit_bytes: limit,
                }
            } else {
                let quota = ctl.allocator().quota_of(container).expect("tracked");
                let usage = quota * usage_frac.min(1.0);
                ToController::CpuStats {
                    container,
                    stats: escra::cfs::CpuPeriodStats {
                        quota_cores: quota,
                        usage_us: usage * 100_000.0,
                        unused_runtime_us: (quota - usage) * 100_000.0,
                        throttled,
                    },
                }
            };
            let mut actions = ctl.handle(now, msg);
            for ack in acks.drain(..) {
                actions.extend(ctl.handle(now, ack));
            }
            actions.extend(ctl.tick(now));
            // Deliver Agent commands through the faulty fabric into the
            // shadow world; empty reclaim reports may kill pending OOMs.
            let mut saw_reclaim = false;
            for a in actions {
                match a {
                    Action::Agent { node, cmd } => {
                        let decision = fabric.decide(now, ctl_addr, node_addr(node));
                        let copies = match decision {
                            FaultDecision::Drop => 0,
                            FaultDecision::Deliver { copies, .. } => copies,
                        };
                        for _ in 0..copies {
                            match cmd {
                                ToAgent::SetMemLimit { container, limit_bytes, seq } => {
                                    let entry = shadow_mem.entry(container).or_insert((0, 0));
                                    if seq > entry.1 {
                                        *entry = (limit_bytes, seq);
                                        acks.push(ToController::LimitAck { container, seq });
                                    }
                                }
                                ToAgent::SetCpuQuota { container, seq, .. } => {
                                    let last = shadow_cpu_seq.entry(container).or_insert(0);
                                    if seq > *last {
                                        *last = seq;
                                    }
                                }
                                ToAgent::ReclaimMemory { .. } => saw_reclaim = true,
                            }
                        }
                    }
                    Action::KillContainer(_) => {}
                }
            }
            if saw_reclaim {
                for a in ctl.on_reclaim_report(now, &[]) {
                    if let Action::KillContainer(_) = a {}
                }
            }
            // The books must balance no matter what the fabric did.
            let pool = ctl.allocator().app_pool(app).expect("app");
            let tracked_cpu = ctl.allocator().tracked_cpu_sum(app);
            prop_assert!((tracked_cpu - pool.allocated_cpu_cores()).abs() < 1e-6);
            prop_assert!(tracked_cpu <= omega + 1e-6);
            let tracked_mem = ctl.allocator().tracked_mem_sum(app);
            prop_assert_eq!(tracked_mem, pool.allocated_mem_bytes());
            prop_assert!(tracked_mem <= global_mem);
        }
    }

    /// Per-node telemetry batching is a pure wire optimisation: a
    /// Controller fed `CpuStatsBatch` messages makes decision-for-decision
    /// the same choices as one fed the same entries as individual
    /// `CpuStats` messages in batch order — same Actions (with the same
    /// seqs), same ControllerStats, same pool accounting — for arbitrary
    /// telemetry sequences, OOM interleavings, and fault plans applied to
    /// the outgoing command stream.
    #[test]
    fn batched_ingest_is_decision_identical_to_singles(
        seed in any::<u64>(),
        loss in 0.0f64..0.6,
        dup in 0.0f64..0.4,
        spike in 0.0f64..0.4,
        rounds in proptest::collection::vec(
            (any::<u8>(), any::<u64>(), any::<u8>(), any::<bool>(), 0u64..6),
            1..80,
        ),
    ) {
        const N: u64 = 6;
        let app = AppId::new(0);
        let mk = || {
            let mut c = Controller::new(EscraConfig::default());
            c.register_app(app, 12.0, 4 << 30);
            for i in 0..N {
                c.register_container(ContainerId::new(i), app, NodeId::new(i % 2), 2.0, 256 << 20)
                    .expect("register");
            }
            c
        };
        let mut single = mk();
        let mut batched = mk();

        let plan = FaultPlan::none()
            .with_loss(loss)
            .with_duplicates(dup)
            .with_delay_spikes(spike, SimDuration::from_millis(700));
        let mut fabric = FaultInjector::new(plan, seed);
        let ctl_addr = Addr::from_raw(0);
        let node_addr = |n: NodeId| Addr::from_raw(1 + n.as_u64());

        // Shadow Agent limits: (applied limit, last seq) per container.
        let mut shadow_mem: BTreeMap<ContainerId, (u64, u64)> = BTreeMap::new();
        let mut feedback: Vec<ToController> = Vec::new();
        let mut now = SimTime::ZERO;

        for (mask, usage_seed, throttle_mask, oom, oom_cid) in rounds {
            now += SimDuration::from_millis(100);
            // Per-node batches in container order, exactly as the
            // harness's Agents coalesce them.
            let mut batches: Vec<Vec<CpuStatsEntry>> = vec![Vec::new(); 2];
            for i in 0..N {
                if mask & (1 << i) == 0 {
                    continue;
                }
                let container = ContainerId::new(i);
                let qa = single.allocator().quota_of(container).expect("tracked");
                let qb = batched.allocator().quota_of(container).expect("tracked");
                prop_assert_eq!(qa.to_bits(), qb.to_bits(), "quota divergence at {}", container);
                let frac = ((usage_seed >> (8 * i)) & 0xFF) as f64 / 255.0;
                let usage = qa * frac;
                let stats = escra::cfs::CpuPeriodStats {
                    quota_cores: qa,
                    usage_us: usage * 100_000.0,
                    unused_runtime_us: (qa - usage) * 100_000.0,
                    throttled: throttle_mask & (1 << i) != 0,
                };
                batches[(i % 2) as usize].push(CpuStatsEntry { container, stats });
            }
            let mut acts_single: Vec<Action> = Vec::new();
            let mut acts_batched: Vec<Action> = Vec::new();
            for (n, entries) in batches.iter().enumerate() {
                if entries.is_empty() {
                    continue;
                }
                for e in entries {
                    single.handle_into(
                        now,
                        ToController::CpuStats { container: e.container, stats: e.stats },
                        &mut acts_single,
                    );
                }
                batched.handle_into(
                    now,
                    ToController::CpuStatsBatch {
                        node: NodeId::new(n as u64),
                        entries: entries.clone(),
                    },
                    &mut acts_batched,
                );
            }
            // OOM events report the shadow limit (so lost grants surface
            // as stale limits); acks from the last round's deliveries go
            // to both controllers as identical messages.
            if oom {
                let container = ContainerId::new(oom_cid % N);
                let limit = shadow_mem
                    .get(&container)
                    .map(|(l, _)| *l)
                    .unwrap_or_else(|| {
                        single.allocator().mem_limit_of(container).expect("tracked")
                    });
                let msg = ToController::OomEvent {
                    container,
                    shortfall_bytes: 8 << 20,
                    current_limit_bytes: limit,
                };
                single.handle_into(now, msg.clone(), &mut acts_single);
                batched.handle_into(now, msg, &mut acts_batched);
            }
            for msg in feedback.drain(..) {
                single.handle_into(now, msg.clone(), &mut acts_single);
                batched.handle_into(now, msg, &mut acts_batched);
            }
            acts_single.extend(single.tick(now));
            acts_batched.extend(batched.tick(now));
            prop_assert_eq!(&acts_single, &acts_batched, "action divergence");
            prop_assert_eq!(single.stats(), batched.stats());

            // The action streams are equal, so one shadow world serves
            // both; the fault fabric decides each command's fate once.
            let mut saw_reclaim = false;
            for a in acts_single {
                if let Action::Agent { node, cmd } = a {
                    let copies = match fabric.decide(now, ctl_addr, node_addr(node)) {
                        FaultDecision::Drop => 0,
                        FaultDecision::Deliver { copies, .. } => copies,
                    };
                    for _ in 0..copies {
                        match cmd {
                            ToAgent::SetMemLimit { container, limit_bytes, seq } => {
                                let entry = shadow_mem.entry(container).or_insert((0, 0));
                                if seq > entry.1 {
                                    *entry = (limit_bytes, seq);
                                    feedback.push(ToController::LimitAck { container, seq });
                                }
                            }
                            ToAgent::SetCpuQuota { .. } => {}
                            ToAgent::ReclaimMemory { .. } => saw_reclaim = true,
                        }
                    }
                }
            }
            if saw_reclaim {
                let ra = single.on_reclaim_report(now, &[]);
                let rb = batched.on_reclaim_report(now, &[]);
                prop_assert_eq!(ra, rb);
            }

            // Pool accounting and pending-grant books match bit for bit.
            let pa = single.allocator().app_pool(app).expect("app");
            let pb = batched.allocator().app_pool(app).expect("app");
            prop_assert_eq!(
                pa.allocated_cpu_cores().to_bits(),
                pb.allocated_cpu_cores().to_bits()
            );
            prop_assert_eq!(pa.allocated_mem_bytes(), pb.allocated_mem_bytes());
            prop_assert_eq!(
                single.allocator().tracked_cpu_sum(app).to_bits(),
                batched.allocator().tracked_cpu_sum(app).to_bits()
            );
            prop_assert_eq!(
                single.allocator().tracked_mem_sum(app),
                batched.allocator().tracked_mem_sum(app)
            );
            prop_assert_eq!(single.pending_grant_count(), batched.pending_grant_count());
        }
    }

    /// The log histogram's percentiles track exact percentiles within its
    /// documented relative error.
    #[test]
    fn histogram_matches_exact_percentiles(
        values in proptest::collection::vec(0.001f64..1e6, 10..500),
        p in 1.0f64..99.0,
    ) {
        let mut h = LogHistogram::new();
        for v in &values {
            h.record(*v);
        }
        let exact = percentile(&values, p);
        let approx = h.percentile(p);
        let rel = (approx - exact).abs() / exact.max(1e-9);
        // Bucket resolution is ~1.5%; ties at bucket edges can double it.
        prop_assert!(rel < 0.05, "p{p}: exact {exact} vs approx {approx}");
    }
}
