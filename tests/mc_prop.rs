//! Property tests for the escra-mc model checker.
//!
//! Three families:
//!
//! * **Strategy agreement.** BFS and DFS must visit the *same* canonical
//!   state set (and agree there is no violation) on every sampled
//!   bounded configuration of the honest protocol — the reachable
//!   closure of a finite graph does not depend on visit order, so any
//!   disagreement means the fingerprint misses state or the model is
//!   nondeterministic.
//! * **Honest protocol verifies clean.** No sampled budget combination
//!   (OOMs, CPU reports, drops, duplicates, timer firings) produces an
//!   invariant violation without a seeded mutation.
//! * **Seeded mutations stay caught.** The two protocol mutations are
//!   found by both strategies on their hunt configurations, and stay
//!   found when the fault budgets are *enlarged* (more choices only add
//!   schedules — they can never hide the bad one). Each counterexample
//!   replays to the same violation with a non-empty decision trace.

use escra::mc::{explore, replay, McConfig, Mutation, Strategy, Violation};
use proptest::prelude::*;

/// A small honest configuration drawn from the sampled budgets: one
/// agent, one container, geometry as [`McConfig::smoke`].
fn bounded(ooms: u32, cpu: u32, drops: u32, dups: u32, ticks: u32) -> McConfig {
    McConfig {
        agents: 1,
        containers: 1,
        ooms_per_container: ooms,
        cpu_reports_per_container: cpu,
        cpu_report_containers: usize::from(cpu > 0),
        drops,
        duplicates: dups,
        ticks,
        ..McConfig::smoke()
    }
}

/// BFS and DFS agree, and the honest protocol is clean, on **every**
/// configuration of the budget lattice (exhaustive, not sampled): ooms
/// 0–2 × cpu reports 0–1 × drops 0–1 × duplicates 0–1 × ticks 0–1,
/// capped at 5 total budgeted events to keep the debug-build run short
/// (the release-mode `mc_explore` gate covers the bigger geometries).
#[test]
fn bfs_and_dfs_agree_and_the_honest_protocol_is_clean() {
    let mut checked = 0;
    for ooms in 0..=2u32 {
        for cpu in 0..=1u32 {
            for drops in 0..=1u32 {
                for dups in 0..=1u32 {
                    for ticks in 0..=1u32 {
                        if ooms + cpu + drops + dups + ticks > 5 {
                            continue;
                        }
                        let cfg = bounded(ooms, cpu, drops, dups, ticks);
                        let bfs = explore(&cfg, Strategy::Bfs);
                        let dfs = explore(&cfg, Strategy::Dfs);
                        assert!(
                            bfs.violation.is_none(),
                            "honest protocol must verify clean on \
                             ({ooms},{cpu},{drops},{dups},{ticks}), got {:?}",
                            bfs.violation
                        );
                        assert!(dfs.violation.is_none());
                        assert_eq!(bfs.fingerprints, dfs.fingerprints);
                        assert_eq!(bfs.states, dfs.states);
                        assert_eq!(bfs.transitions, dfs.transitions);
                        assert_eq!(bfs.states, bfs.fingerprints.len());
                        checked += 1;
                    }
                }
            }
        }
    }
    assert_eq!(checked, 47, "lattice coverage drifted");
}

proptest! {
    #[test]
    fn seeded_mutations_stay_caught_under_enlarged_budgets(
        extra_drops in 0u32..2,
        extra_dups in 0u32..2,
        extra_ticks in 0u32..2,
    ) {
        // Enlarging budgets adds schedules; the catching schedule is
        // still among them, so the mutation must still be caught (by
        // both strategies — DFS may find a different, longer witness).
        let grow = |mut cfg: McConfig, mutation: Mutation| {
            cfg.drops += extra_drops;
            cfg.duplicates += extra_dups;
            cfg.ticks += extra_ticks;
            cfg.with_mutation(mutation)
        };
        for (cfg, wants_valve) in [
            (grow(McConfig::stale_window(), Mutation::SkipStaleDiscard), true),
            (grow(McConfig::cross_kind(), Mutation::AckClearsBySeqLe), false),
        ] {
            let bfs = explore(&cfg, Strategy::Bfs);
            let ce = bfs.violation.clone();
            prop_assert!(ce.is_some(), "BFS missed the mutation");
            let ce = ce.unwrap();
            if wants_valve {
                prop_assert!(matches!(ce.violation, Violation::ValveClamped { .. }));
            } else {
                prop_assert!(matches!(
                    ce.violation,
                    Violation::AckDivergence { .. } | Violation::GrantUnresolved { .. }
                ));
            }
            prop_assert!(
                explore(&cfg, Strategy::Dfs).violation.is_some(),
                "DFS missed the mutation"
            );
            // The counterexample is replayable: same violation, with a
            // rendered decision trace and a deterministic fingerprint.
            let a = replay(&cfg, &ce.steps);
            let b = replay(&cfg, &ce.steps);
            prop_assert_eq!(a.violation.as_ref(), Some(&ce.violation));
            prop_assert!(!a.trace.is_empty());
            prop_assert_eq!(a.trace_fp, b.trace_fp);
            prop_assert_eq!(&a.script, &b.script);
        }
    }
}

/// The exact pre-fix controller bug (`pending.seq <= ack.seq`) is found
/// as a minimal, human-checkable counterexample: drop the grant, let
/// the later CPU ack retire it, and the limit is silently lost.
#[test]
fn ack_seq_le_counterexample_is_minimal_and_replayable() {
    let cfg = McConfig::cross_kind().with_mutation(Mutation::AckClearsBySeqLe);
    let bfs = explore(&cfg, Strategy::Bfs);
    let ce = bfs.violation.expect("mutation must be caught");
    // BFS yields a shortest witness: trap, deliver, drop, report,
    // deliver stats, deliver quota, deliver ack — seven steps.
    assert_eq!(ce.steps.len(), 7, "steps: {:?}", ce.steps);
    let r = replay(&cfg, &ce.steps);
    assert_eq!(r.violation, Some(ce.violation));
    assert!(r.trace.contains("grant_issued"), "trace:\n{}", r.trace);
    assert!(r.trace.contains("fault_drop"));
    // The same schedule against the *fixed* controller is clean.
    let honest = replay(&McConfig::cross_kind(), &ce.steps);
    assert_eq!(honest.violation, None);
}

/// The stale-discard mutation's witness replays against the honest
/// protocol without tripping anything: the agent's seq check is exactly
/// what separates the two runs.
#[test]
fn stale_discard_counterexample_is_discarded_by_the_honest_agent() {
    let cfg = McConfig::stale_window().with_mutation(Mutation::SkipStaleDiscard);
    let ce = explore(&cfg, Strategy::Bfs)
        .violation
        .expect("mutation must be caught");
    assert!(matches!(ce.violation, Violation::ValveClamped { .. }));
    let mutated = replay(&cfg, &ce.steps);
    assert!(mutated.trace.contains("agent_valve_clamp"));
    let honest = replay(&McConfig::stale_window(), &ce.steps);
    assert_eq!(honest.violation, None);
    assert!(
        honest.trace.contains("agent_stale_drop"),
        "honest trace:\n{}",
        honest.trace
    );
}
