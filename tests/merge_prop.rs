//! Property tests for distribution merges: [`LogHistogram::merge`] and
//! the escra-metrics recorder merges must behave exactly like recording
//! the concatenated sample stream — the correctness requirement for
//! reducing per-thread recorders from a sharded or parallel-sweep run
//! into one distribution.
//!
//! Counts and bucket contents add exactly (integers), so percentiles of
//! a merged histogram equal percentiles of the concatenation *exactly*.
//! Only the mean is compared with a float tolerance: `merge` adds the
//! two partial sums, while concatenated recording accumulates sample by
//! sample, and f64 addition is not associative.

use escra::metrics::{LatencyRecorder, SlackRecorder};
use escra::simcore::histogram::LogHistogram;
use escra::simcore::time::SimDuration;
use proptest::prelude::*;

/// Percentile grid used for the equality and monotonicity checks.
const GRID: [f64; 10] = [0.0, 1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0];

fn hist_of(values: &[f64]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

fn assert_mean_close(merged: f64, concat: f64) -> Result<(), TestCaseError> {
    let tol = 1e-9 * (1.0 + merged.abs());
    prop_assert!(
        (merged - concat).abs() <= tol,
        "mean diverged beyond float tolerance: merged={merged}, concat={concat}"
    );
    Ok(())
}

proptest! {
    /// `a.merge(&b)` is indistinguishable from recording `a ++ b` into a
    /// fresh histogram: exact count/min/max/percentiles, mean within
    /// float tolerance.
    #[test]
    fn histogram_merge_matches_concatenated_recording(
        xs in proptest::collection::vec(-2.0f64..1e6, 0..400),
        ys in proptest::collection::vec(-2.0f64..1e6, 0..400),
    ) {
        let mut merged = hist_of(&xs);
        let other = hist_of(&ys);
        merged.merge(&other);

        let concat: Vec<f64> = xs.iter().chain(ys.iter()).copied().collect();
        let expect = hist_of(&concat);

        prop_assert_eq!(merged.count(), expect.count());
        prop_assert_eq!(merged.count(), (xs.len() + ys.len()) as u64);
        prop_assert_eq!(merged.min().to_bits(), expect.min().to_bits());
        prop_assert_eq!(merged.max().to_bits(), expect.max().to_bits());
        assert_mean_close(merged.mean(), expect.mean())?;
        // Bucket contents are integer counts, so percentile lookups agree
        // exactly — not just approximately.
        for p in GRID {
            prop_assert_eq!(
                merged.percentile(p).to_bits(),
                expect.percentile(p).to_bits(),
                "p{} diverged",
                p
            );
        }
    }

    /// Percentiles of a merged histogram are monotone non-decreasing in
    /// `p`, and bounded by min/max.
    #[test]
    fn merged_percentiles_are_monotone(
        xs in proptest::collection::vec(0.0f64..1e4, 1..300),
        ys in proptest::collection::vec(0.0f64..1e4, 1..300),
    ) {
        let mut h = hist_of(&xs);
        h.merge(&hist_of(&ys));
        let mut last = f64::NEG_INFINITY;
        for p in GRID {
            let v = h.percentile(p);
            prop_assert!(v >= last, "percentile not monotone at p{}: {} < {}", p, v, last);
            prop_assert!(v >= h.min() && v <= h.max());
            last = v;
        }
    }

    /// [`LatencyRecorder::merge`] preserves success/failure counts
    /// exactly and reproduces the concatenated latency distribution.
    #[test]
    fn latency_recorder_merge_preserves_accounting(
        lat_a in proptest::collection::vec(1u64..120_000, 0..200),
        lat_b in proptest::collection::vec(1u64..120_000, 0..200),
        fail_a in 0u64..20,
        fail_b in 0u64..20,
    ) {
        let record = |lats: &[u64], fails: u64| {
            let mut r = LatencyRecorder::new();
            for &us in lats {
                r.record_success(SimDuration::from_micros(us));
            }
            for _ in 0..fails {
                r.record_failure();
            }
            r
        };
        let mut merged = record(&lat_a, fail_a);
        merged.merge(&record(&lat_b, fail_b));

        let concat: Vec<u64> = lat_a.iter().chain(lat_b.iter()).copied().collect();
        let expect = record(&concat, fail_a + fail_b);

        prop_assert_eq!(merged.successes(), expect.successes());
        prop_assert_eq!(merged.failures(), fail_a + fail_b);
        assert_mean_close(merged.mean_ms(), expect.mean_ms())?;
        let mut last = f64::NEG_INFINITY;
        for p in GRID {
            prop_assert_eq!(merged.p(p).to_bits(), expect.p(p).to_bits(), "p{} diverged", p);
            prop_assert!(merged.p(p) >= last);
            last = merged.p(p);
        }
        // Throughput is derived from the (exact) success count.
        let d = SimDuration::from_secs(30);
        prop_assert_eq!(
            merged.throughput(d).to_bits(),
            expect.throughput(d).to_bits()
        );
    }

    /// [`SlackRecorder::merge`] reduces both resource distributions like
    /// the concatenation, keeping the two histograms in lock-step.
    #[test]
    fn slack_recorder_merge_matches_concatenation(
        a in proptest::collection::vec((0.0f64..16.0, 0.0f64..4096.0), 0..200),
        b in proptest::collection::vec((0.0f64..16.0, 0.0f64..4096.0), 0..200),
    ) {
        let record = |samples: &[(f64, f64)]| {
            let mut r = SlackRecorder::new();
            for &(cpu, mem) in samples {
                r.record(cpu, mem);
            }
            r
        };
        let mut merged = record(&a);
        merged.merge(&record(&b));

        let concat: Vec<(f64, f64)> = a.iter().chain(b.iter()).copied().collect();
        let expect = record(&concat);

        prop_assert_eq!(merged.count(), expect.count());
        prop_assert_eq!(merged.count(), (a.len() + b.len()) as u64);
        let mut last_cpu = f64::NEG_INFINITY;
        let mut last_mem = f64::NEG_INFINITY;
        for p in GRID {
            prop_assert_eq!(merged.cpu_p(p).to_bits(), expect.cpu_p(p).to_bits());
            prop_assert_eq!(merged.mem_p(p).to_bits(), expect.mem_p(p).to_bits());
            prop_assert!(merged.cpu_p(p) >= last_cpu);
            prop_assert!(merged.mem_p(p) >= last_mem);
            last_cpu = merged.cpu_p(p);
            last_mem = merged.mem_p(p);
        }
        prop_assert_eq!(merged.cpu_cdf().len(), expect.cpu_cdf().len());
        prop_assert_eq!(merged.mem_cdf().len(), expect.mem_cdf().len());
    }
}
