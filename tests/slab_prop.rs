//! Slab-lifecycle property tests: churn the Resource Allocator's
//! container registry (register / deregister / slot reuse) against a
//! naive `BTreeMap` model and hold every public view to the model.
//!
//! The allocator stores container state in a dense slab with a free
//! list and a direct-mapped id index, and each app keeps a swap-remove
//! member list (see `allocator.rs`). All three structures are invisible
//! through the public API — which is exactly why the model test exists:
//! any slot-recycling or member-list bookkeeping bug shows up as a
//! wrong `quota_of`/`tracked_*_sum`/pool answer, never as a crash.

use escra::cluster::{AppId, ContainerId, NodeId};
use escra::core::allocator::ResourceAllocator;
use escra::core::{AllocatorError, EscraConfig};
use proptest::prelude::*;
use std::collections::BTreeMap;

const MIB: u64 = 1 << 20;
/// Registered apps; the strategy also draws this value itself as an
/// *unregistered* app id to exercise the `UnknownApp` path.
const APPS: u64 = 4;
const IDS: u64 = 24;

/// What the model remembers per live container: the app, the node, and
/// the `(cpu, mem)` grant the pool actually returned at registration.
type Model = BTreeMap<u64, (AppId, NodeId, f64, u64)>;

fn model_cpu_sum(model: &Model, app: AppId) -> f64 {
    model
        .values()
        .filter(|(a, ..)| *a == app)
        .map(|(_, _, cpu, _)| *cpu)
        .sum()
}

fn model_mem_sum(model: &Model, app: AppId) -> u64 {
    model
        .values()
        .filter(|(a, ..)| *a == app)
        .map(|(.., mem)| *mem)
        .sum()
}

/// Every public view must agree with the model after every operation.
fn assert_matches_model(alloc: &ResourceAllocator, model: &Model) {
    assert_eq!(alloc.container_count(), model.len());
    for raw in 0..IDS {
        let id = ContainerId::new(raw);
        match model.get(&raw) {
            Some((app, node, cpu, mem)) => {
                assert_eq!(alloc.app_of(id), Some(*app));
                assert_eq!(alloc.node_of(id), Some(*node));
                assert_eq!(alloc.quota_of(id), Some(*cpu));
                assert_eq!(alloc.mem_limit_of(id), Some(*mem));
            }
            None => {
                assert_eq!(alloc.app_of(id), None);
                assert_eq!(alloc.node_of(id), None);
                assert_eq!(alloc.quota_of(id), None);
                assert_eq!(alloc.mem_limit_of(id), None);
            }
        }
    }
    for a in 0..APPS {
        let app = AppId::new(a);
        let cpu = model_cpu_sum(model, app);
        let mem = model_mem_sum(model, app);
        assert!((alloc.tracked_cpu_sum(app) - cpu).abs() < 1e-9);
        assert_eq!(alloc.tracked_mem_sum(app), mem);
        // Σ tracked == pool.allocated: the slab, the member lists, and
        // the pool books must never drift apart.
        let pool = alloc.app_pool(app).expect("registered app");
        assert!((pool.allocated_cpu_cores() - cpu).abs() < 1e-9);
        assert_eq!(pool.allocated_mem_bytes(), mem);
    }
}

proptest! {
    /// Arbitrary register/deregister churn, including immediate id
    /// reuse after deregistration (free-list recycling) and error
    /// cases, stays view-identical to the `BTreeMap` model.
    #[test]
    fn slab_churn_matches_btreemap_model(
        ops in proptest::collection::vec(
            (0u8..2, 0u64..IDS, 0u64..APPS + 1, 0u64..3, 1u64..9),
            1..160,
        ),
    ) {
        let cfg = EscraConfig::default();
        let mut alloc = ResourceAllocator::new(cfg.clone());
        for a in 0..APPS {
            alloc.register_app(AppId::new(a), 16.0, 4096 * MIB);
        }
        let mut model: Model = BTreeMap::new();

        for (op, raw, app_raw, node_raw, size) in ops {
            let id = ContainerId::new(raw);
            let app = AppId::new(app_raw);
            let node = NodeId::new(node_raw);
            let want_cpu = size as f64 * 0.5;
            let want_mem = size * 64 * MIB;
            match op {
                0 => {
                    let res = alloc.register_container(id, app, node, want_cpu, want_mem);
                    match model.entry(raw) {
                        std::collections::btree_map::Entry::Occupied(_) => {
                            prop_assert_eq!(res, Err(AllocatorError::DuplicateContainer(id)));
                        }
                        std::collections::btree_map::Entry::Vacant(_) if app_raw >= APPS => {
                            prop_assert_eq!(res, Err(AllocatorError::UnknownApp(app)));
                        }
                        std::collections::btree_map::Entry::Vacant(vacant) => {
                            // The grant may be pool-capped but never exceeds
                            // the request (floored at the configured minima).
                            let (cpu, mem) = res.expect("fresh id, known app");
                            prop_assert!(cpu <= want_cpu.max(cfg.min_quota_cores) + 1e-12);
                            prop_assert!(mem <= want_mem.max(cfg.min_mem_bytes));
                            vacant.insert((app, node, cpu, mem));
                        }
                    }
                }
                _ => {
                    let res = alloc.deregister_container(id);
                    if model.remove(&raw).is_some() {
                        prop_assert_eq!(res, Ok(()));
                    } else {
                        prop_assert_eq!(res, Err(AllocatorError::UnknownContainer(id)));
                    }
                }
            }
            assert_matches_model(&alloc, &model);
        }

        // Tear everything down: every pool must read fully released.
        let live: Vec<u64> = model.keys().copied().collect();
        for raw in live {
            alloc.deregister_container(ContainerId::new(raw)).expect("live");
            model.remove(&raw);
        }
        assert_matches_model(&alloc, &model);
        for a in 0..APPS {
            let pool = alloc.app_pool(AppId::new(a)).expect("registered app");
            prop_assert!(pool.allocated_cpu_cores().abs() < 1e-9);
            prop_assert_eq!(pool.allocated_mem_bytes(), 0);
        }
    }
}
