//! Golden-matrix regression test: pins the pre-PR summary numbers of the
//! pre-existing policies (static-1.5×, Autopilot, VPA, Escra) on two
//! representative table1/fig4 cells, as committed fixtures.
//!
//! Every number in Table I and Fig. 4 is a pure function of the
//! [`RunMetrics`] pinned here (p99.9 latency, throughput, slack
//! percentiles, OOM counts, mean aggregate limits), so byte-identical
//! fixtures prove that adding new baseline policies and the cost column
//! did not perturb any committed baseline result.
//!
//! Regenerate (only when an intentional simulator change invalidates the
//! numbers) with:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --test golden_matrix
//! ```

use escra::baselines::VpaConfig;
use escra::harness::{profile_run, run_with_profiles, MicroSimConfig, Policy};
use escra::metrics::RunMetrics;
use escra::simcore::time::SimDuration;
use escra::workloads::{hipster_shop, teastore, MicroserviceApp, WorkloadKind};
use std::fmt::Write as _;
use std::path::Path;

/// Matches `escra_bench::SEED` (the committed-artifact master seed).
const SEED: u64 = 20220701;
/// Matches `escra_bench::SMOKE_RUN_SECS` (the CI smoke duration).
const RUN_SECS: u64 = 8;

fn cells() -> Vec<(&'static str, MicroserviceApp, &'static str, WorkloadKind)> {
    vec![
        ("Teastore", teastore(), "fixed", WorkloadKind::paper_fixed()),
        (
            "HipsterShop",
            hipster_shop(),
            "burst",
            WorkloadKind::paper_burst(),
        ),
    ]
}

/// One pinned line per run: every quantity the table1/fig4 summaries are
/// computed from, at fixed precision.
fn summary_line(app: &str, workload: &str, m: &RunMetrics) -> String {
    let mut s = String::new();
    write!(
        s,
        "cell={app}/{workload} policy={} succ={} fail={} tput={:.6} p999={:.6} \
         cpu_p50={:.6} cpu_p99={:.6} mem_p50={:.6} mem_p99={:.6} oom={} \
         cpu_lim_mean={:.6} mem_lim_mean={:.6} lim_samples={}",
        m.policy,
        m.latency.successes(),
        m.latency.failures(),
        m.throughput(),
        m.latency.p(99.9),
        m.slack.cpu_p(50.0),
        m.slack.cpu_p(99.0),
        m.slack.mem_p(50.0),
        m.slack.mem_p(99.0),
        m.oom_kills,
        m.cpu_limit_series.mean(),
        m.mem_limit_series.mean(),
        m.cpu_limit_series.len(),
    )
    .expect("write to string");
    s
}

fn render_matrix() -> String {
    let mut out = String::new();
    for (app_name, app, wl_name, wl) in cells() {
        let base = MicroSimConfig::new(app, wl, Policy::static_1_5x(), SEED)
            .with_duration(SimDuration::from_secs(RUN_SECS));
        let profiles = profile_run(&base);
        for policy in [
            Policy::static_1_5x(),
            Policy::autopilot_default(),
            Policy::Vpa(VpaConfig::default()),
            Policy::escra_default(),
        ] {
            let cfg = MicroSimConfig {
                policy,
                ..base.clone()
            };
            let m = run_with_profiles(&cfg, &profiles).metrics;
            out.push_str(&summary_line(app_name, wl_name, &m));
            out.push('\n');
        }
    }
    out
}

#[test]
fn baseline_numbers_match_committed_fixture() {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/matrix_baselines.txt");
    let rendered = render_matrix();
    if std::env::var("GOLDEN_REGEN").is_ok() {
        std::fs::create_dir_all(fixture.parent().expect("fixture dir")).expect("mkdir");
        std::fs::write(&fixture, &rendered).expect("write fixture");
        eprintln!("regenerated {}", fixture.display());
        return;
    }
    let committed = std::fs::read_to_string(&fixture).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run with GOLDEN_REGEN=1",
            fixture.display()
        )
    });
    if committed != rendered {
        for (i, (want, got)) in committed.lines().zip(rendered.lines()).enumerate() {
            if want != got {
                panic!(
                    "golden matrix diverged at line {}:\n  committed: {}\n  computed:  {}",
                    i + 1,
                    want,
                    got
                );
            }
        }
        panic!(
            "golden matrix line count changed: committed {} vs computed {}",
            committed.lines().count(),
            rendered.lines().count()
        );
    }
}
