//! Integration tests for the serverless path (paper §VI-F/G).

use escra::core::EscraConfig;
use escra::harness::serverless_sim::{run_serverless, ServerlessApp, ServerlessConfig};
use escra::workloads::serverless::{grid_search_task, image_process, GRID_SEARCH_TASKS};

fn one_iteration(escra: bool, seed: u64) -> ServerlessConfig {
    ServerlessConfig {
        app: ServerlessApp::ImageProcess { iterations: 1 },
        ..ServerlessConfig::image_process(escra.then(EscraConfig::default), seed)
    }
}

#[test]
fn image_process_serves_all_750_requests() {
    for escra in [false, true] {
        let out = run_serverless(&one_iteration(escra, 4), &image_process());
        let m = &out.metrics;
        assert!(
            m.latency.successes() >= 745,
            "escra={escra}: {} successes",
            m.latency.successes()
        );
        assert!(m.latency.mean_ms() > 500.0 && m.latency.mean_ms() < 5_000.0);
    }
}

#[test]
fn escra_cuts_serverless_reservations_without_latency_collapse() {
    // §VI-G/H: "Escra increased efficiency while maintaining performance."
    let vanilla = run_serverless(&one_iteration(false, 8), &image_process());
    let escra = run_serverless(&one_iteration(true, 8), &image_process());
    assert!(
        escra.metrics.cpu_limit_series.mean() < vanilla.metrics.cpu_limit_series.mean(),
        "cpu: escra {} vs vanilla {}",
        escra.metrics.cpu_limit_series.mean(),
        vanilla.metrics.cpu_limit_series.mean()
    );
    assert!(escra.metrics.mem_limit_series.mean() < vanilla.metrics.mem_limit_series.mean());
    assert!(escra.metrics.latency.mean_ms() < vanilla.metrics.latency.mean_ms() * 1.25);
}

#[test]
fn grid_search_completes_under_both_configs() {
    for escra in [false, true] {
        let cfg = ServerlessConfig::grid_search(escra.then(EscraConfig::default), 31);
        let out = run_serverless(&cfg, &grid_search_task());
        let latency = out
            .job_latency
            .unwrap_or_else(|| panic!("escra={escra}: job must finish"));
        let secs = latency.as_secs_f64();
        // Paper: ~300 s; accept a generous band around the model.
        assert!((120.0..=900.0).contains(&secs), "escra={escra}: {secs}s");
        assert!(out.metrics.latency.successes() as usize >= GRID_SEARCH_TASKS);
    }
}

#[test]
fn grid_search_at_80_percent_resources_stays_close() {
    // §VI-G case (3): 80 % of the resources, ~1 % higher latency.
    let full = run_serverless(
        &ServerlessConfig::grid_search(Some(EscraConfig::default()), 77),
        &grid_search_task(),
    );
    let mut cfg = ServerlessConfig::grid_search(Some(EscraConfig::default()), 77);
    cfg.resource_scale = 0.8;
    let scaled = run_serverless(&cfg, &grid_search_task());
    let full_s = full.job_latency.expect("finishes").as_secs_f64();
    let scaled_s = scaled.job_latency.expect("finishes").as_secs_f64();
    assert!(
        scaled_s < full_s * 1.15,
        "80% resources {scaled_s}s vs full {full_s}s"
    );
}

#[test]
fn serverless_runs_are_deterministic() {
    let a = run_serverless(&one_iteration(true, 3), &image_process());
    let b = run_serverless(&one_iteration(true, 3), &image_process());
    assert_eq!(a.metrics.latency.p(99.0), b.metrics.latency.p(99.0));
    assert_eq!(a.peak_pods, b.peak_pods);
}
