//! Multi-tenant isolation (paper §VII): one Controller managing two
//! applications must keep their Distributed Containers isolated — a
//! throttling tenant can only grow into *its own* pool, and one tenant's
//! OOM pressure cannot drain another tenant's memory.

use escra::cfs::{CpuPeriodStats, MIB};
use escra::cluster::{AppId, ContainerId, NodeId};
use escra::core::telemetry::ToController;
use escra::core::{Action, Controller, EscraConfig, ToAgent};
use escra::simcore::time::SimTime;

const TENANT_A: AppId = AppId::new(0);
const TENANT_B: AppId = AppId::new(1);
const NODE: NodeId = NodeId::new(0);

fn two_tenant_controller() -> Controller {
    let mut c = Controller::new(EscraConfig::default());
    c.register_app(TENANT_A, 4.0, 1024 * MIB);
    c.register_app(TENANT_B, 4.0, 1024 * MIB);
    // Two containers each, fully allocating tenant A, half of tenant B.
    c.register_container(ContainerId::new(0), TENANT_A, NODE, 2.0, 256 * MIB)
        .expect("register");
    c.register_container(ContainerId::new(1), TENANT_A, NODE, 2.0, 256 * MIB)
        .expect("register");
    c.register_container(ContainerId::new(10), TENANT_B, NODE, 1.0, 256 * MIB)
        .expect("register");
    c.register_container(ContainerId::new(11), TENANT_B, NODE, 1.0, 256 * MIB)
        .expect("register");
    c
}

fn throttled(quota: f64) -> CpuPeriodStats {
    CpuPeriodStats {
        quota_cores: quota,
        usage_us: quota * 100_000.0,
        unused_runtime_us: 0.0,
        throttled: true,
    }
}

#[test]
fn throttled_tenant_cannot_take_from_the_other_pool() {
    let mut c = two_tenant_controller();
    // Tenant A is fully allocated: throttles must not yield grants even
    // though tenant B has 2 unallocated cores sitting right there.
    for _ in 0..10 {
        let actions = c.handle(
            SimTime::ZERO,
            ToController::CpuStats {
                container: ContainerId::new(0),
                stats: throttled(2.0),
            },
        );
        assert!(
            actions.is_empty(),
            "tenant A must not receive CPU while its own pool is empty"
        );
    }
    let pool_b = c.allocator().app_pool(TENANT_B).expect("tenant B");
    assert!((pool_b.unallocated_cpu_cores() - 2.0).abs() < 1e-9);
    assert!(c.allocator().tracked_cpu_sum(TENANT_A) <= 4.0 + 1e-9);
}

#[test]
fn tenant_with_headroom_still_scales() {
    let mut c = two_tenant_controller();
    // Tenant B has 2 unallocated cores; its throttled container grows.
    let actions = c.handle(
        SimTime::ZERO,
        ToController::CpuStats {
            container: ContainerId::new(10),
            stats: throttled(1.0),
        },
    );
    assert_eq!(actions.len(), 1);
    match actions[0] {
        Action::Agent {
            cmd: ToAgent::SetCpuQuota { quota_cores, .. },
            ..
        } => assert!(quota_cores > 1.0),
        other => panic!("unexpected action {other:?}"),
    }
    // Tenant A's accounting is untouched.
    assert!((c.allocator().tracked_cpu_sum(TENANT_A) - 4.0).abs() < 1e-9);
}

#[test]
fn oom_grants_come_from_the_owners_pool_only() {
    let mut c = two_tenant_controller();
    let before_b = c
        .allocator()
        .app_pool(TENANT_B)
        .expect("tenant B")
        .unallocated_mem_bytes();
    // Tenant A container OOMs; its pool has 512 MiB headroom.
    let actions = c.handle(
        SimTime::ZERO,
        ToController::OomEvent {
            container: ContainerId::new(0),
            shortfall_bytes: MIB,
            current_limit_bytes: 256 * MIB,
        },
    );
    assert!(matches!(
        actions[0],
        Action::Agent {
            cmd: ToAgent::SetMemLimit { .. },
            ..
        }
    ));
    let after_b = c
        .allocator()
        .app_pool(TENANT_B)
        .expect("tenant B")
        .unallocated_mem_bytes();
    assert_eq!(
        before_b, after_b,
        "tenant B's memory pool must be untouched"
    );
    let pool_a = c.allocator().app_pool(TENANT_A).expect("tenant A");
    assert!(pool_a.unallocated_mem_bytes() < 512 * MIB);
}

#[test]
fn released_capacity_stays_within_the_tenant() {
    let mut c = two_tenant_controller();
    // Tenant A container 1 goes idle and shrinks...
    let idle = CpuPeriodStats {
        quota_cores: 2.0,
        usage_us: 10_000.0,
        unused_runtime_us: 190_000.0,
        throttled: false,
    };
    c.handle(
        SimTime::ZERO,
        ToController::CpuStats {
            container: ContainerId::new(1),
            stats: idle,
        },
    );
    let freed = c
        .allocator()
        .app_pool(TENANT_A)
        .expect("tenant A")
        .unallocated_cpu_cores();
    assert!(freed > 0.5, "scale-down must free tenant A capacity");
    // ...and tenant A's other container can now grow into it.
    let actions = c.handle(
        SimTime::ZERO,
        ToController::CpuStats {
            container: ContainerId::new(0),
            stats: throttled(2.0),
        },
    );
    assert!(
        !actions.is_empty(),
        "freed capacity is usable within the tenant"
    );
}
