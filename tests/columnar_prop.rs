//! Decision-identity property tests for the columnar CPU telemetry
//! ingest path: the per-message (`CpuStats`), row-batch
//! (`ingest_cpu_batch`) and columnar (`ingest_cpu_columns`) forms —
//! serial and sharded at every shard count N ∈ {1, 2, 4, 7} — must
//! make the same decisions, bump the same counters, and render
//! byte-identical merged decision traces, under content-keyed
//! telemetry fault plans (lost and duplicated reports).
//!
//! ## Why the forms are exactly comparable
//!
//! Telemetry is generated directly in the columnar wire encoding
//! (u32 microseconds / millicores, a packed throttle bitset); the row
//! forms are derived via [`CpuPeriodStats::from_fixed_point`]. Every
//! u32 is exactly representable in f64 and the columnar ingest's bulk
//! u32→cores conversion is bit-identical to the row paths' per-entry
//! division, so there is no quantization gap between the encodings —
//! any divergence the test finds is a real decision divergence.
//!
//! ## What the sharded side additionally exercises
//!
//! The sharded run consumes each node's report list as a content-keyed
//! *mix* of all three forms (runs of per-message, batch and columnar
//! deliveries). Columnar sub-blocks below the router's coalescing
//! threshold are *held* for merging, so a columnar run followed by a
//! row-form run for the same shard forces the router's
//! flush-before-reorder invariant: the held block must reach the shard
//! ring first, or per-shard FIFO (and with it decision identity)
//! breaks.
//!
//! ## Fault plans
//!
//! As in `sharded_prop`, faults are content-keyed — a report's fate is
//! a hash of `(container, namespace, round, seed)` — so every
//! representation of the stream loses or duplicates exactly the same
//! logical reports, independent of delivery order.

use escra::cfs::CpuPeriodStats;
use escra::cluster::{AppId, ContainerId, NodeId};
use escra::core::telemetry::{CpuStatsColumns, ToController};
use escra::core::{Action, Controller, CpuStatsEntry, EscraConfig, ShardedController, ToAgent};
use escra::metrics::trace::{render_merged, TraceRecorder};
use escra::simcore::time::{SimDuration, SimTime};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Containers in the scenario (two per app — sibling pool interactions
/// must behave identically across ingest forms).
const N_CONT: u64 = 8;
/// Applications; container `i` belongs to app `i / 2`.
const N_APPS: u64 = 4;
/// Nodes; container `i` reports from node `i % 3`.
const N_NODES: u64 = 3;
/// Per-recorder event capacity: must hold a worst-case run in full
/// (`dropped() == 0` is asserted) so trace byte-equality compares
/// complete streams, not ring-buffer suffixes.
const TRACE_CAP: usize = 1 << 13;

/// Fate-key namespaces for the content-keyed fault plan.
const FATE_LOSS: u64 = 1;
const FATE_DUP: u64 = 2;
const FATE_FORM: u64 = 3;

fn app_of(i: u64) -> AppId {
    AppId::new(i / 2)
}

fn node_of(i: u64) -> NodeId {
    NodeId::new(i % N_NODES)
}

/// Content-keyed fate in `[0, 1)`: depends only on the report's
/// identity, never on delivery order or representation.
fn fate(seed: u64, a: u64, kind: u64, b: u64) -> f64 {
    let mut x = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(a.rotate_left(17))
        .wrapping_add(kind.wrapping_mul(0xD1B5_4A32_D192_ED03))
        .wrapping_add(b.rotate_left(43));
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// One container's period report in the fixed-point wire encoding —
/// the single source of truth all three ingest forms are derived from.
#[derive(Clone, Copy)]
struct Report {
    container: u64,
    quota_mcores: u32,
    usage_us: u32,
    unused_us: u32,
    throttled: bool,
}

impl Report {
    /// The row (struct-of-structs) form of this report.
    fn entry(&self) -> CpuStatsEntry {
        CpuStatsEntry {
            container: ContainerId::new(self.container),
            stats: CpuPeriodStats::from_fixed_point(
                self.quota_mcores,
                self.unused_us,
                self.usage_us,
                self.throttled,
            ),
        }
    }

    /// Appends this report to a columnar block.
    fn push_into(&self, cols: &mut CpuStatsColumns) {
        cols.push_raw(
            ContainerId::new(self.container),
            self.quota_mcores,
            self.unused_us,
            self.usage_us,
            self.throttled,
        );
    }
}

/// Canonical CPU command: `(container, node, quota_bits, rank)` with
/// the shard-local seq replaced by the per-container occurrence rank
/// (representation-independent), sorted for order-insensitive
/// comparison against the sharded drain.
fn canon_cpu(actions: &[Action]) -> Vec<(u64, u64, u64, u64)> {
    let mut ranks: BTreeMap<u64, u64> = BTreeMap::new();
    let mut v: Vec<(u64, u64, u64, u64)> = actions
        .iter()
        .map(|a| match *a {
            Action::Agent {
                node,
                cmd:
                    ToAgent::SetCpuQuota {
                        container,
                        quota_cores,
                        ..
                    },
            } => {
                let c = container.as_u64();
                let r = ranks.entry(c).or_insert(0);
                let rank = *r;
                *r += 1;
                (c, node.as_u64(), quota_cores.to_bits(), rank)
            }
            ref other => panic!("unexpected action in a CPU-only scenario: {other:?}"),
        })
        .collect();
    v.sort_unstable();
    v
}

proptest! {
    /// The acceptance-criteria identity: columnar vs `ingest_cpu_batch`
    /// vs per-message `CpuStats`, serial and sharded at N ∈ {1, 2, 4,
    /// 7}, under content-keyed loss/duplication fault plans — equal
    /// decisions (the serial sides byte-equal including seqs), equal
    /// stats counters, and byte-equal merged decision traces.
    #[test]
    fn columnar_batch_and_per_message_ingest_are_decision_identical(
        fault_seed in any::<u64>(),
        loss in 0.0f64..0.5,
        dup in 0.0f64..0.4,
        rounds in proptest::collection::vec(
            (any::<u8>(), any::<u64>(), any::<u64>(), any::<u8>()),
            1..50,
        ),
    ) {
        for n_shards in [1usize, 2, 4, 7] {
            let rec = || TraceRecorder::with_capacity(TRACE_CAP);
            let mut by_msg = Controller::with_sink(EscraConfig::default(), rec());
            let mut by_batch = Controller::with_sink(EscraConfig::default(), rec());
            let mut by_cols = Controller::with_sink(EscraConfig::default(), rec());
            let mut sharded = ShardedController::with_sinks(
                EscraConfig::default(),
                n_shards,
                |i| rec().with_class(i as u16),
            );
            for a in 0..N_APPS {
                let (app, omega, mem) = (AppId::new(a), 6.0, 1u64 << 30);
                by_msg.register_app(app, omega, mem);
                by_batch.register_app(app, omega, mem);
                by_cols.register_app(app, omega, mem);
                sharded.register_app(app, omega, mem);
            }
            for i in 0..N_CONT {
                let c = ContainerId::new(i);
                by_msg.register_container(c, app_of(i), node_of(i), 1.5, 128 << 20)
                    .expect("register");
                by_batch.register_container(c, app_of(i), node_of(i), 1.5, 128 << 20)
                    .expect("register");
                by_cols.register_container(c, app_of(i), node_of(i), 1.5, 128 << 20)
                    .expect("register");
                sharded.register_container(c, app_of(i), node_of(i), 1.5, 128 << 20)
                    .expect("register");
            }
            // Identical registration bootstrap on every side; discard it.
            sharded.drain_actions();

            let mut acts_m: Vec<Action> = Vec::new();
            let mut acts_b: Vec<Action> = Vec::new();
            let mut acts_c: Vec<Action> = Vec::new();
            let mut acts_s: Vec<Action> = Vec::new();
            let mut now = SimTime::ZERO;
            for (round_idx, &(mask, usage_seed, unused_seed, throttle_mask)) in
                rounds.iter().enumerate()
            {
                now += SimDuration::from_millis(100);
                let r = round_idx as u64;

                // All four representations agree bit-for-bit on every
                // tracked quota before the round's telemetry lands.
                for i in 0..N_CONT {
                    let c = ContainerId::new(i);
                    let q = by_msg.allocator().quota_of(c).expect("tracked").to_bits();
                    prop_assert_eq!(
                        q,
                        by_batch.allocator().quota_of(c).expect("tracked").to_bits()
                    );
                    prop_assert_eq!(
                        q,
                        by_cols.allocator().quota_of(c).expect("tracked").to_bits()
                    );
                    prop_assert_eq!(q, sharded.quota_of(c).expect("tracked").to_bits());
                }

                // The round's reports, through the content-keyed fault
                // plan: a lost report vanishes from every form, a
                // duplicated one appears twice back-to-back in every
                // form.
                let mut per_node: Vec<Vec<Report>> =
                    (0..N_NODES).map(|_| Vec::new()).collect();
                for i in 0..N_CONT {
                    if mask & (1 << i) == 0 || fate(fault_seed, i, FATE_LOSS, r) < loss {
                        continue;
                    }
                    let quota = by_msg
                        .allocator()
                        .quota_of(ContainerId::new(i))
                        .expect("tracked");
                    let report = Report {
                        container: i,
                        quota_mcores: (quota * 1000.0).round().clamp(0.0, u32::MAX as f64)
                            as u32,
                        usage_us: (((usage_seed >> (8 * i)) & 0xFF) as u32) * 1_000,
                        unused_us: (((unused_seed >> (8 * i)) & 0xFF) as u32) * 400,
                        throttled: throttle_mask & (1 << i) != 0,
                    };
                    let copies = if fate(fault_seed, i, FATE_DUP, r) < dup { 2 } else { 1 };
                    for _ in 0..copies {
                        per_node[(i % N_NODES) as usize].push(report);
                    }
                }

                acts_m.clear();
                acts_b.clear();
                acts_c.clear();
                acts_s.clear();
                for (node, reports) in per_node.iter().enumerate() {
                    if reports.is_empty() {
                        continue;
                    }
                    // Serial side 1: one wire message per report.
                    for rep in reports {
                        let e = rep.entry();
                        by_msg.handle_into(
                            now,
                            ToController::CpuStats {
                                container: e.container,
                                stats: e.stats,
                            },
                            &mut acts_m,
                        );
                    }
                    // Serial side 2: the node's reports as one row batch.
                    let entries: Vec<CpuStatsEntry> =
                        reports.iter().map(Report::entry).collect();
                    by_batch.ingest_cpu_batch_at(now, &entries, &mut acts_b);
                    // Serial side 3: the same reports as one columnar block.
                    let mut cols = CpuStatsColumns::new();
                    for rep in reports {
                        rep.push_into(&mut cols);
                    }
                    by_cols.ingest_cpu_columns_at(now, &cols, &mut acts_c);
                    // Sharded side: the same reports as content-keyed
                    // runs mixing all three forms, which interleaves
                    // held columnar sub-blocks with row-form deliveries
                    // to the same shards.
                    let form_of = |k: usize| {
                        (fate(fault_seed, (node as u64) * 131 + k as u64, FATE_FORM, r)
                            * 3.0) as usize
                    };
                    let mut k = 0usize;
                    while k < reports.len() {
                        let form = form_of(k);
                        let mut end = k + 1;
                        while end < reports.len() && form_of(end) == form {
                            end += 1;
                        }
                        let run = &reports[k..end];
                        match form.min(2) {
                            0 => {
                                for rep in run {
                                    let e = rep.entry();
                                    sharded.handle(
                                        now,
                                        ToController::CpuStats {
                                            container: e.container,
                                            stats: e.stats,
                                        },
                                    );
                                }
                            }
                            1 => {
                                let entries: Vec<CpuStatsEntry> =
                                    run.iter().map(Report::entry).collect();
                                sharded.ingest_cpu_batch_at(now, &entries);
                            }
                            _ => {
                                let mut sub = CpuStatsColumns::new();
                                for rep in run {
                                    rep.push_into(&mut sub);
                                }
                                sharded.ingest_cpu_columns_at(now, &sub);
                            }
                        }
                        k = end;
                    }
                }
                sharded.drain_actions_into(&mut acts_s);

                // The serial forms emit the *same action bytes* — same
                // decisions, same emission order, same seq numbers.
                prop_assert_eq!(&acts_m, &acts_b, "per-message vs batch (n={})", n_shards);
                prop_assert_eq!(&acts_m, &acts_c, "per-message vs columnar (n={})", n_shards);
                // The sharded drain matches up to per-shard seq
                // numbering and cross-shard emission order.
                prop_assert_eq!(
                    canon_cpu(&acts_m),
                    canon_cpu(&acts_s),
                    "serial vs sharded (n={})",
                    n_shards
                );
                prop_assert_eq!(by_msg.stats(), by_batch.stats());
                prop_assert_eq!(by_msg.stats(), by_cols.stats());
                prop_assert_eq!(by_msg.stats(), sharded.stats(), "stats (n={})", n_shards);
            }

            // Merged decision traces are byte-identical across all four
            // representations — full streams, nothing wrapped away.
            prop_assert_eq!(by_msg.sink().dropped(), 0);
            prop_assert_eq!(by_batch.sink().dropped(), 0);
            prop_assert_eq!(by_cols.sink().dropped(), 0);
            let sinks = sharded.take_sinks();
            for s in &sinks {
                prop_assert_eq!(s.dropped(), 0);
            }
            let refs: Vec<&TraceRecorder> = sinks.iter().collect();
            let t_msg = render_merged(&[by_msg.sink()]);
            let t_batch = render_merged(&[by_batch.sink()]);
            let t_cols = render_merged(&[by_cols.sink()]);
            let t_sharded = render_merged(&refs);
            prop_assert_eq!(&t_msg, &t_batch, "trace: per-message vs batch");
            prop_assert_eq!(&t_msg, &t_cols, "trace: per-message vs columnar");
            prop_assert_eq!(&t_msg, &t_sharded, "trace: serial vs sharded (n={})", n_shards);
        }
    }
}
