//! Integration tests spanning the whole workspace: deploy → drive →
//! measure under each policy, checking the paper's headline claims hold
//! in-the-small on every run.

use escra::cluster::NodeId;
use escra::harness::{controller_addr, node_addr, run, MicroSimConfig, Policy};
use escra::net::FaultPlan;
use escra::simcore::time::{SimDuration, SimTime};
use escra::workloads::{hipster_shop, teastore, WorkloadKind};

fn quick(policy: Policy, seed: u64) -> MicroSimConfig {
    MicroSimConfig::new(teastore(), WorkloadKind::Fixed { rps: 200.0 }, policy, seed)
        .with_duration(SimDuration::from_secs(15))
}

/// The acceptance fault level: 10 % loss plus one 2 s partition of a
/// worker node from the Controller, mid-run.
fn lossy_partitioned() -> FaultPlan {
    FaultPlan::none().with_loss(0.10).with_partition(
        controller_addr(),
        node_addr(NodeId::new(1)),
        SimTime::from_secs(14),
        SimTime::from_secs(16),
    )
}

#[test]
fn escra_never_ooms() {
    // §VI-E: "In all 32 experiments, Escra experienced zero OOMs."
    for seed in [1, 7, 42] {
        let out = run(&quick(Policy::escra_default(), seed));
        assert_eq!(out.metrics.oom_kills, 0, "seed {seed}");
        assert_eq!(
            out.controller_stats.expect("escra stats").ooms_fatal,
            0,
            "seed {seed}"
        );
    }
}

#[test]
fn escra_never_ooms_under_loss_and_partition() {
    // The fault-tolerance claim: a lossy control plane with a partitioned
    // node must not get containers OOM-killed — lost grants are recovered
    // by the retry timer or by reconciliation on the next OOM event, and
    // the Agent-side valve holds last-known-good limits meanwhile.
    for seed in [1, 7, 42] {
        let cfg = quick(Policy::escra_default(), seed).with_faults(lossy_partitioned());
        let out = run(&cfg);
        let faults = out.fault_stats.expect("fault stats");
        assert!(
            faults.dropped > 0 && faults.partitioned > 0,
            "faults must actually fire (seed {seed}: {faults:?})"
        );
        assert_eq!(out.metrics.oom_kills, 0, "seed {seed}");
        assert_eq!(
            out.controller_stats.expect("escra stats").ooms_fatal,
            0,
            "seed {seed}"
        );
    }
}

#[test]
fn faulty_runs_with_identical_seeds_are_bit_reproducible() {
    let mk = || {
        quick(Policy::escra_default(), 9).with_faults(
            lossy_partitioned()
                .with_duplicates(0.03)
                .with_delay_spikes(0.03, SimDuration::from_millis(400)),
        )
    };
    let a = run(&mk());
    let b = run(&mk());
    assert_eq!(a.metrics.latency.successes(), b.metrics.latency.successes());
    assert_eq!(a.metrics.latency.p(99.9), b.metrics.latency.p(99.9));
    assert_eq!(a.fault_stats, b.fault_stats);
    assert_eq!(
        a.network.expect("net").total_bytes(),
        b.network.expect("net").total_bytes()
    );
}

#[test]
fn inactive_fault_plan_reproduces_the_faultless_run_exactly() {
    // A plan whose partition never overlaps the run and whose
    // probabilities are zero must not consume a single RNG draw, so the
    // run is bit-identical to one with no fault plan at all.
    let inert = FaultPlan::none().with_partition(
        controller_addr(),
        node_addr(NodeId::new(0)),
        SimTime::from_secs(9_000),
        SimTime::from_secs(9_002),
    );
    let a = run(&quick(Policy::escra_default(), 9));
    let b = run(&quick(Policy::escra_default(), 9).with_faults(inert));
    assert_eq!(a.metrics.latency.successes(), b.metrics.latency.successes());
    assert_eq!(a.metrics.latency.p(99.9), b.metrics.latency.p(99.9));
    assert_eq!(a.metrics.slack.cpu_p(50.0), b.metrics.slack.cpu_p(50.0));
    assert_eq!(
        a.network.expect("net").total_bytes(),
        b.network.expect("net").total_bytes()
    );
}

#[test]
fn escra_respects_the_distributed_container_limit() {
    // The aggregate of all quotas must never exceed Ωl — the runtime
    // enforcement that distinguishes Distributed Containers from
    // admission-time Resource Quotas (§III).
    let app = teastore();
    let omega = app.global_cpu_cores;
    let cfg = MicroSimConfig::new(app, WorkloadKind::paper_burst(), Policy::escra_default(), 3)
        .with_duration(SimDuration::from_secs(20));
    let out = run(&cfg);
    let max_agg = out.metrics.cpu_limit_series.max().expect("limits sampled");
    assert!(
        max_agg <= omega + 1e-6,
        "aggregate limit {max_agg} exceeded Ω = {omega}"
    );
}

#[test]
fn identical_seeds_are_bit_reproducible() {
    let a = run(&quick(Policy::escra_default(), 9));
    let b = run(&quick(Policy::escra_default(), 9));
    assert_eq!(a.metrics.latency.successes(), b.metrics.latency.successes());
    assert_eq!(a.metrics.latency.p(99.9), b.metrics.latency.p(99.9));
    assert_eq!(a.metrics.slack.cpu_p(50.0), b.metrics.slack.cpu_p(50.0));
    assert_eq!(
        a.controller_stats.expect("stats").quota_updates,
        b.controller_stats.expect("stats").quota_updates
    );
}

#[test]
fn different_seeds_differ() {
    let a = run(&quick(Policy::escra_default(), 1));
    let b = run(&quick(Policy::escra_default(), 2));
    // Same workload shape, different sample paths.
    assert_ne!(a.metrics.latency.p(99.9), b.metrics.latency.p(99.9));
}

#[test]
fn all_policies_serve_the_fixed_workload() {
    for policy in [
        Policy::escra_default(),
        Policy::static_1_5x(),
        Policy::autopilot_default(),
    ] {
        let name = policy.name();
        let out = run(&quick(policy, 5));
        let tput = out.metrics.throughput();
        assert!(tput > 150.0, "{name}: tput {tput}");
    }
}

#[test]
fn escra_reduces_median_slack_on_hipster_burst() {
    // The headline trade-off (§VI-B): Escra cuts slack without giving up
    // throughput, on the workload the paper highlights.
    let mk = |policy| {
        MicroSimConfig::new(hipster_shop(), WorkloadKind::paper_burst(), policy, 2022)
            .with_duration(SimDuration::from_secs(30))
    };
    let escra = run(&mk(Policy::escra_default()));
    let fixed = run(&mk(Policy::static_1_5x()));
    assert!(
        escra.metrics.slack.cpu_p(50.0) < fixed.metrics.slack.cpu_p(50.0),
        "escra {} vs static {}",
        escra.metrics.slack.cpu_p(50.0),
        fixed.metrics.slack.cpu_p(50.0)
    );
    assert!(
        escra.metrics.slack.mem_p(50.0) < fixed.metrics.slack.mem_p(50.0),
        "escra mem {} vs static {}",
        escra.metrics.slack.mem_p(50.0),
        fixed.metrics.slack.mem_p(50.0)
    );
    assert!(escra.metrics.throughput() >= fixed.metrics.throughput() * 0.95);
}

#[test]
fn escra_telemetry_flows_and_is_accounted() {
    let out = run(&quick(Policy::escra_default(), 13));
    let stats = out.controller_stats.expect("stats");
    // 7 containers × 10 reports/s × ~15 s of measured run (plus warm-up).
    assert!(stats.cpu_stats_ingested > 1_000);
    assert!(stats.scale_ups > 0, "some throttles must have occurred");
    assert!(stats.scale_downs > 0, "some slack must have been reclaimed");
    assert!(stats.reclaim_sweeps >= 2, "5 s reclamation loop ran");
    let net = out.network.expect("escra accounts bytes");
    assert!(net.total_bytes() > 0);
    assert!(
        net.peak_mbps() < 100.0,
        "control plane must stay lightweight"
    );
}
