//! Property and invariant tests for the app-sharded multi-threaded
//! Controller: decision-for-decision identity with the sequential
//! Controller, and cross-shard safety invariants.
//!
//! ## Canonicalization
//!
//! A sharded Controller emits the same *logical* command stream as a
//! sequential one, but two representational details legitimately differ
//! and are normalised before comparison:
//!
//! * **Sequence numbers.** Each shard stamps its own monotonic seq, so
//!   global numbering differs. Agents filter staleness per container,
//!   and every container's commands come from one home shard in
//!   emission order — so seqs are replaced with the command's
//!   *occurrence rank* per `(container, resource)` in emission order,
//!   which is representation-independent.
//! * **Cluster-wide reclamation sweeps.** Every shard launches the
//!   periodic sweep on the same schedule; the sharded drain already
//!   deduplicates the identical `ReclaimMemory` commands, and a
//!   sequential Controller may itself emit the same `(node, δ)` command
//!   twice in one round (periodic + OOM-triggered). Both sides are
//!   therefore compared on their per-round *sets* of `(node, δ)`.
//!
//! ## Content-keyed faults
//!
//! The PR 2 fault injector draws per-command in global stream order, so
//! it would assign different fates to the same logical command on the
//! two sides (whose global orders differ). Faults here are instead
//! *content-keyed*: a command's fate is a hash of `(container, kind,
//! rank, fault seed)`, so equal canonical streams get equal fates —
//! losses included — without coupling to emission order. Ack losses are
//! keyed the same way.

use escra::cluster::{AppId, ContainerId, NodeId};
use escra::core::controller::ControllerStats;
use escra::core::telemetry::ToController;
use escra::core::{Action, Controller, CpuStatsEntry, EscraConfig, ShardedController, ToAgent};
use escra::simcore::rng::SimRng;
use escra::simcore::time::{SimDuration, SimTime};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Containers in the identity scenario (two per app — sibling pool
/// interactions must shard correctly).
const N_CONT: u64 = 8;
/// Applications; container `i` belongs to app `i / 2`.
const N_APPS: u64 = 4;
/// Nodes; container `i` runs on node `i % 3`.
const N_NODES: u64 = 3;

fn app_of(i: u64) -> AppId {
    AppId::new(i / 2)
}

fn node_of(i: u64) -> NodeId {
    NodeId::new(i % N_NODES)
}

/// Content-keyed fault decision in `[0, 1)`: depends only on the
/// command's identity, never on emission order.
fn fate(seed: u64, a: u64, kind: u64, b: u64) -> f64 {
    let mut x = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(a.rotate_left(17))
        .wrapping_add(kind.wrapping_mul(0xD1B5_4A32_D192_ED03))
        .wrapping_add(b.rotate_left(43));
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Canonical command: `(kind, node, container, value, rank)` with
/// seq replaced by per-(container, kind) occurrence rank. Reclaims use
/// rank 0 and are deduplicated per round before canonicalization.
type Canon = (u8, u64, u64, u64, u64);

const KIND_CPU: u8 = 0;
const KIND_MEM: u8 = 1;
const KIND_RECLAIM: u8 = 2;
const KIND_KILL: u8 = 3;
/// Fate-key namespace for ack losses (not a command kind).
const KIND_ACK: u64 = 10;

/// One side's delivery pass over a chunk of raw actions: builds the
/// canonical stream, applies content-keyed losses to the shadow Agent
/// world, and collects (side-specific) acks.
#[allow(clippy::too_many_arguments)]
fn process_chunk(
    actions: &[Action],
    ranks: &mut BTreeMap<(u64, u8), u64>,
    limits: &mut BTreeMap<u64, u64>,
    acks: &mut Vec<(u64, u64, u64)>,
    round_reclaims: &mut Vec<(u64, u64)>,
    canon: &mut Vec<Canon>,
    fault_seed: u64,
    loss: f64,
    ack_loss: f64,
) {
    let bump = |ranks: &mut BTreeMap<(u64, u8), u64>, c: u64, k: u8| -> u64 {
        let r = ranks.entry((c, k)).or_insert(0);
        let rank = *r;
        *r += 1;
        rank
    };
    for a in actions {
        match *a {
            Action::Agent {
                node,
                cmd:
                    ToAgent::SetCpuQuota {
                        container,
                        quota_cores,
                        ..
                    },
            } => {
                let c = container.as_u64();
                let rank = bump(ranks, c, KIND_CPU);
                canon.push((KIND_CPU, node.as_u64(), c, quota_cores.to_bits(), rank));
                // CPU quotas have no shadow state to update.
            }
            Action::Agent {
                node,
                cmd:
                    ToAgent::SetMemLimit {
                        container,
                        limit_bytes,
                        seq,
                    },
            } => {
                let c = container.as_u64();
                let rank = bump(ranks, c, KIND_MEM);
                canon.push((KIND_MEM, node.as_u64(), c, limit_bytes, rank));
                if fate(fault_seed, c, KIND_MEM as u64, rank) >= loss {
                    limits.insert(c, limit_bytes);
                    if fate(fault_seed, c, KIND_ACK, rank) >= ack_loss {
                        acks.push((c, rank, seq));
                    }
                }
            }
            Action::Agent {
                node,
                cmd: ToAgent::ReclaimMemory { delta_bytes },
            } => {
                let key = (node.as_u64(), delta_bytes);
                if !round_reclaims.contains(&key) {
                    round_reclaims.push(key);
                    canon.push((KIND_RECLAIM, key.0, 0, key.1, 0));
                }
            }
            Action::KillContainer(container) => {
                let c = container.as_u64();
                let rank = bump(ranks, c, KIND_KILL);
                canon.push((KIND_KILL, 0, c, 0, rank));
            }
        }
    }
}

/// Merged stats with the one documented divergence masked: each shard
/// runs its own sweep schedule, so `reclaim_sweeps` counts per shard.
fn comparable(mut stats: ControllerStats) -> ControllerStats {
    stats.reclaim_sweeps = 0;
    stats
}

/// Side-specific ack feedback in canonical (container, rank) order —
/// each side acks its *own* seqs, but for the same logical grants.
fn feedback_msgs(acks: &mut Vec<(u64, u64, u64)>) -> Vec<ToController> {
    acks.sort_unstable();
    acks.drain(..)
        .map(|(c, _rank, seq)| ToController::LimitAck {
            container: ContainerId::new(c),
            seq,
        })
        .collect()
}

proptest! {
    /// The tentpole identity property: for N ∈ {1, 2, 4, 7} shards, the
    /// sharded Controller and a sequential Controller emit the same
    /// canonical action sets, the same merged stats (modulo
    /// `reclaim_sweeps`), and bit-identical pool books — for arbitrary
    /// telemetry streams, OOM interleavings, and content-keyed fault
    /// plans dropping commands and acks.
    #[test]
    fn sharded_is_decision_identical_to_sequential(
        fault_seed in any::<u64>(),
        loss in 0.0f64..0.7,
        ack_loss in 0.0f64..0.5,
        rounds in proptest::collection::vec(
            (any::<u8>(), any::<u64>(), any::<u8>(), any::<bool>(), 0u64..N_CONT),
            1..80,
        ),
    ) {
        for n_shards in [1usize, 2, 4, 7] {
            let mut seq = Controller::new(EscraConfig::default());
            let mut sharded = ShardedController::new(EscraConfig::default(), n_shards);
            for a in 0..N_APPS {
                seq.register_app(AppId::new(a), 6.0, 1 << 30);
                sharded.register_app(AppId::new(a), 6.0, 1 << 30);
            }
            for i in 0..N_CONT {
                let c = ContainerId::new(i);
                seq.register_container(c, app_of(i), node_of(i), 1.5, 128 << 20)
                    .expect("register");
                sharded
                    .register_container(c, app_of(i), node_of(i), 1.5, 128 << 20)
                    .expect("register");
            }
            // Discard the identical registration bootstrap on both sides.
            sharded.drain_actions();

            // Shadow Agent world: applied mem limits (canonical values,
            // asserted equal across sides every round) + per-side rank
            // counters and ack queues.
            let mut limits: BTreeMap<u64, u64> =
                (0..N_CONT).map(|i| (i, 128u64 << 20)).collect();
            let mut ranks_a: BTreeMap<(u64, u8), u64> = BTreeMap::new();
            let mut ranks_b: BTreeMap<(u64, u8), u64> = BTreeMap::new();
            let mut acks_a: Vec<(u64, u64, u64)> = Vec::new();
            let mut acks_b: Vec<(u64, u64, u64)> = Vec::new();
            let mut feedback_a: Vec<ToController> = Vec::new();
            let mut feedback_b: Vec<ToController> = Vec::new();

            let mut now = SimTime::ZERO;
            for &(mask, usage_seed, throttle_mask, oom, oom_cid) in &rounds {
                now += SimDuration::from_millis(100);
                let mut acts_a: Vec<Action> = Vec::new();
                let mut acts_b: Vec<Action> = Vec::new();

                // Per-node telemetry batches, fed as the same
                // `CpuStatsBatch` envelopes to both sides.
                let mut batches: Vec<Vec<CpuStatsEntry>> =
                    (0..N_NODES).map(|_| Vec::new()).collect();
                for i in 0..N_CONT {
                    if mask & (1 << i) == 0 {
                        continue;
                    }
                    let container = ContainerId::new(i);
                    let qa = seq.allocator().quota_of(container).expect("tracked");
                    let qb = sharded.quota_of(container).expect("tracked");
                    prop_assert_eq!(qa.to_bits(), qb.to_bits(), "quota divergence");
                    let frac = ((usage_seed >> (8 * i)) & 0xFF) as f64 / 255.0;
                    let usage = qa * frac;
                    let stats = escra::cfs::CpuPeriodStats {
                        quota_cores: qa,
                        usage_us: usage * 100_000.0,
                        unused_runtime_us: (qa - usage) * 100_000.0,
                        throttled: throttle_mask & (1 << i) != 0,
                    };
                    batches[(i % N_NODES) as usize].push(CpuStatsEntry { container, stats });
                }
                for (n, entries) in batches.iter().enumerate() {
                    if entries.is_empty() {
                        continue;
                    }
                    let msg = ToController::CpuStatsBatch {
                        node: NodeId::new(n as u64),
                        entries: entries.clone(),
                    };
                    seq.handle_into(now, msg.clone(), &mut acts_a);
                    sharded.handle(now, msg);
                }
                if oom {
                    let c = oom_cid % N_CONT;
                    let msg = ToController::OomEvent {
                        container: ContainerId::new(c),
                        shortfall_bytes: 8 << 20,
                        current_limit_bytes: limits[&c],
                    };
                    seq.handle_into(now, msg.clone(), &mut acts_a);
                    sharded.handle(now, msg);
                }
                for msg in feedback_a.drain(..) {
                    seq.handle_into(now, msg, &mut acts_a);
                }
                for msg in feedback_b.drain(..) {
                    sharded.handle(now, msg);
                }
                acts_a.extend(seq.tick(now));
                sharded.tick(now);
                sharded.drain_actions_into(&mut acts_b);

                // Deliver each side through the content-keyed fabric into
                // its own clone of the shadow world.
                let mut canon_a: Vec<Canon> = Vec::new();
                let mut canon_b: Vec<Canon> = Vec::new();
                let mut limits_a = limits.clone();
                let mut limits_b = limits.clone();
                let mut reclaims_a: Vec<(u64, u64)> = Vec::new();
                let mut reclaims_b: Vec<(u64, u64)> = Vec::new();
                process_chunk(
                    &acts_a, &mut ranks_a, &mut limits_a, &mut acks_a,
                    &mut reclaims_a, &mut canon_a, fault_seed, loss, ack_loss,
                );
                process_chunk(
                    &acts_b, &mut ranks_b, &mut limits_b, &mut acks_b,
                    &mut reclaims_b, &mut canon_b, fault_seed, loss, ack_loss,
                );

                // A sweep command that survives the fabric triggers the
                // Agent's report; an empty report still retries pending
                // OOMs, so it must reach both sides symmetrically.
                let mut sorted_a = reclaims_a.clone();
                let mut sorted_b = reclaims_b.clone();
                sorted_a.sort_unstable();
                sorted_b.sort_unstable();
                prop_assert_eq!(&sorted_a, &sorted_b, "reclaim divergence");
                let saw_reclaim = sorted_a
                    .iter()
                    .any(|&(node, delta)| fate(fault_seed, node, KIND_RECLAIM as u64, delta) >= loss);
                if saw_reclaim {
                    let ra = seq.on_reclaim_report(now, &[]);
                    sharded.on_reclaim_report(now, &[]);
                    let mut rb = Vec::new();
                    sharded.drain_actions_into(&mut rb);
                    process_chunk(
                        &ra, &mut ranks_a, &mut limits_a, &mut acks_a,
                        &mut reclaims_a, &mut canon_a, fault_seed, loss, ack_loss,
                    );
                    process_chunk(
                        &rb, &mut ranks_b, &mut limits_b, &mut acks_b,
                        &mut reclaims_b, &mut canon_b, fault_seed, loss, ack_loss,
                    );
                }

                canon_a.sort_unstable();
                canon_b.sort_unstable();
                prop_assert_eq!(&canon_a, &canon_b, "canonical action divergence (n={})", n_shards);
                prop_assert_eq!(&limits_a, &limits_b, "shadow limit divergence");
                limits = limits_a;
                feedback_a = feedback_msgs(&mut acks_a);
                feedback_b = feedback_msgs(&mut acks_b);
                prop_assert_eq!(feedback_a.len(), feedback_b.len());

                // Aggregate counters and pool books match exactly.
                prop_assert_eq!(
                    comparable(seq.stats()),
                    comparable(sharded.stats()),
                    "stats divergence (n={})",
                    n_shards
                );
                for a in 0..N_APPS {
                    let app = AppId::new(a);
                    let pa = seq.allocator().app_pool(app).expect("app");
                    let pb = sharded.app_pool(app).expect("app");
                    prop_assert_eq!(
                        pa.allocated_cpu_cores().to_bits(),
                        pb.allocated_cpu_cores.to_bits()
                    );
                    prop_assert_eq!(pa.allocated_mem_bytes(), pb.allocated_mem_bytes);
                    prop_assert_eq!(
                        seq.allocator().tracked_cpu_sum(app).to_bits(),
                        sharded.tracked_cpu_sum(app).to_bits()
                    );
                    prop_assert_eq!(
                        seq.allocator().tracked_mem_sum(app),
                        sharded.tracked_mem_sum(app)
                    );
                }
                prop_assert_eq!(seq.pending_grant_count(), sharded.pending_grant_count());
            }
        }
    }

    /// Cross-shard conservation: after arbitrary concurrent multi-app
    /// ingest (telemetry + OOMs), every application's pool books balance
    /// on its home shard — Σ member quotas/limits equals the pool's
    /// allocated totals and never exceeds the app's global limits.
    #[test]
    fn per_app_pools_conserved_on_every_shard(
        seed in any::<u64>(),
        n_rounds in 1usize..30,
    ) {
        const APPS: u64 = 6;
        const PER_APP: u64 = 3;
        const NODES: u64 = 4;
        let omega = 4.5f64;
        let global_mem: u64 = 1 << 30;
        let mut sharded = ShardedController::new(EscraConfig::default(), 4);
        for a in 0..APPS {
            sharded.register_app(AppId::new(a), omega, global_mem);
        }
        for i in 0..APPS * PER_APP {
            sharded
                .register_container(
                    ContainerId::new(i),
                    AppId::new(i / PER_APP),
                    NodeId::new(i % NODES),
                    1.0,
                    96 << 20,
                )
                .expect("register");
        }
        sharded.drain_actions();

        let mut rng = SimRng::new(seed);
        let mut now = SimTime::ZERO;
        for _ in 0..n_rounds {
            now += SimDuration::from_millis(100);
            let mut batches: Vec<Vec<CpuStatsEntry>> =
                (0..NODES).map(|_| Vec::new()).collect();
            for i in 0..APPS * PER_APP {
                let container = ContainerId::new(i);
                let quota = sharded.quota_of(container).expect("tracked");
                let frac = rng.next_f64();
                let usage = quota * frac;
                batches[(i % NODES) as usize].push(CpuStatsEntry {
                    container,
                    stats: escra::cfs::CpuPeriodStats {
                        quota_cores: quota,
                        usage_us: usage * 100_000.0,
                        unused_runtime_us: (quota - usage) * 100_000.0,
                        throttled: rng.next_f64() < 0.3,
                    },
                });
            }
            for entries in &batches {
                sharded.ingest_cpu_batch(entries);
            }
            if rng.next_f64() < 0.4 {
                let c = rng.next_u64() % (APPS * PER_APP);
                let current = sharded.mem_limit_of(ContainerId::new(c)).expect("tracked");
                sharded.handle(now, ToController::OomEvent {
                    container: ContainerId::new(c),
                    shortfall_bytes: 4 << 20,
                    current_limit_bytes: current,
                });
            }
            sharded.tick(now);
            sharded.drain_actions();

            for a in 0..APPS {
                let app = AppId::new(a);
                let pool = sharded.app_pool(app).expect("app");
                let tracked_cpu = sharded.tracked_cpu_sum(app);
                let tracked_mem = sharded.tracked_mem_sum(app);
                // Σ member limits equals the pool's allocated totals ...
                prop_assert!((tracked_cpu - pool.allocated_cpu_cores).abs() < 1e-6);
                prop_assert_eq!(tracked_mem, pool.allocated_mem_bytes);
                // ... and never exceeds the app's global limit.
                prop_assert!(pool.allocated_cpu_cores <= omega + 1e-6);
                prop_assert!(pool.allocated_mem_bytes <= global_mem);
            }
        }
    }
}

/// A registration routed to the wrong shard (here: injected directly,
/// bypassing the app-affine router) must be rejected and counted in
/// `register_errors` on that shard — never silently absorbed into a
/// foreign shard's books.
#[test]
fn wrong_shard_registration_is_counted_not_absorbed() {
    let mut sharded = ShardedController::new(EscraConfig::default(), 4);
    for a in 0..4u64 {
        sharded.register_app(AppId::new(a), 4.0, 1 << 30);
        sharded
            .register_container(
                ContainerId::new(a),
                AppId::new(a),
                NodeId::new(0),
                1.0,
                64 << 20,
            )
            .expect("register");
    }
    sharded.drain_actions();

    // App 2's home shard is 2; deliver its registration to shard 1.
    sharded.inject_wire_to_shard(
        1,
        SimTime::ZERO,
        ToController::Register {
            container: ContainerId::new(99),
            app: AppId::new(2),
            node: NodeId::new(0),
        },
    );
    assert!(
        sharded.drain_actions().is_empty(),
        "a rejected registration must not bootstrap cgroups"
    );
    let per_shard = sharded.per_shard_stats();
    assert_eq!(
        per_shard[1].register_errors, 1,
        "rejection counted where it landed"
    );
    for (i, s) in per_shard.iter().enumerate() {
        if i != 1 {
            assert_eq!(s.register_errors, 0);
        }
    }
    assert_eq!(sharded.stats().register_errors, 1);
    // The stray container joined no shard's books.
    assert_eq!(sharded.shard_of_container(ContainerId::new(99)), None);
    assert_eq!(sharded.mem_limit_of(ContainerId::new(99)), None);
}
