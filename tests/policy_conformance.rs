//! Trait-level conformance suite for every [`PeriodicScaler`] impl
//! (Static, Autopilot, VPA, tiny autoscaler, ARC-V): the contract the
//! harness drivers rely on, checked uniformly across policies —
//!
//! * same-seed determinism: two fresh scalers fed the same trace emit
//!   byte-identical decision streams;
//! * all emitted limits stay within `[floor, node capacity]`;
//! * adversarial traces (spikes, zeros, sawtooth, phase flips) never
//!   produce NaN/infinite/non-positive quotas;
//! * idempotence at quiescence: flat usage converges to silence instead
//!   of re-emitting the same limits forever;
//! * forgotten containers stay forgotten (no updates for dead pods);
//! * pool conservation through the microsim: under every [`Policy`] the
//!   aggregate limit series stays within the cluster's core pool.
//!
//! [`PeriodicScaler`]: escra::baselines::PeriodicScaler
//! [`Policy`]: escra::harness::Policy

use escra::baselines::{
    ArcVConfig, ArcVScaler, AutopilotConfig, AutopilotScaler, ContainerProfile, LimitUpdate,
    PeriodicScaler, StaticPolicy, TinyAutoscaler, TinyAutoscalerConfig, UsageSample, VpaConfig,
    VpaScaler,
};
use escra::cfs::MIB;
use escra::cluster::ContainerId;
use escra::harness::{profile_run, run_with_profiles, MicroSimConfig, Policy};
use escra::simcore::time::SimDuration;
use escra::workloads::{teastore, WorkloadKind};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Containers driven through every scaler.
const N_CONTAINERS: u64 = 4;
/// The common CPU ceiling of the scaler configs (tiny/ARC-V node
/// capacity; the trace keeps usage far below it, so threshold scalers
/// like VPA/Autopilot cannot legitimately exceed it either).
const CAPACITY_CORES: f64 = 64.0;
/// The common memory ceiling (64 GiB).
const CAPACITY_BYTES: u64 = 64 * 1024 * MIB;

fn ids() -> Vec<ContainerId> {
    (0..N_CONTAINERS).map(ContainerId::new).collect()
}

/// All five impls behind the trait, by report name.
fn scalers() -> Vec<(&'static str, Box<dyn PeriodicScaler>)> {
    let mut profiles = BTreeMap::new();
    for id in ids() {
        profiles.insert(
            id,
            ContainerProfile {
                peak_cpu_cores: 1.0,
                peak_mem_bytes: 256 * MIB,
            },
        );
    }
    vec![
        (
            "static-1.5x",
            Box::new(StaticPolicy::from_profiles(&profiles, 1.5)) as Box<dyn PeriodicScaler>,
        ),
        (
            "autopilot",
            Box::new(AutopilotScaler::new(AutopilotConfig::default())),
        ),
        ("vpa", Box::new(VpaScaler::new(VpaConfig::default()))),
        (
            "tiny",
            Box::new(TinyAutoscaler::new(TinyAutoscalerConfig::default())),
        ),
        ("arc-v", Box::new(ArcVScaler::new(ArcVConfig::default()))),
    ]
}

/// Deterministic xorshift64* stream for the adversarial traces.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in [0, 1).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// One adversarial usage sample: spikes, zeros, sawtooth ramps, phase
/// flips, and occasional near-zero denormal-ish usage. CPU stays in
/// [0, 8] cores (below every validator's capacity), memory in
/// [0, 2 GiB].
fn adversarial_sample(rng: &mut Rng, step: u64, container: u64) -> UsageSample {
    let phase = (step / 17 + container) % 5;
    let cpu = match phase {
        0 => 0.0,                      // idle stretch
        1 => 8.0 * rng.next_f64(),     // noise up to "capacity"
        2 => (step % 13) as f64 * 0.6, // sawtooth ramp
        3 => 1e-12,                    // pathologically tiny
        _ => {
            if step.is_multiple_of(2) {
                7.9
            } else {
                0.1 // alternating extremes
            }
        }
    };
    let mem = match phase {
        0 => 0,
        1 => (2048.0 * rng.next_f64()) as u64 * MIB,
        2 => (step % 13) * 100 * MIB,
        3 => 1,
        _ => {
            if step.is_multiple_of(2) {
                2048 * MIB
            } else {
                16 * MIB
            }
        }
    };
    UsageSample {
        cpu_cores: cpu,
        mem_bytes: mem,
    }
}

/// Drives `scaler` through the full lifecycle on the adversarial trace
/// (track → observe → recommend → on_oom → forget) and returns the
/// Debug-formatted decision stream plus every update emitted.
fn drive(scaler: &mut dyn PeriodicScaler, seed: u64, steps: u64) -> (String, Vec<LimitUpdate>) {
    let mut rng = Rng(seed | 1);
    let mut stream = String::new();
    let mut all = Vec::new();
    for id in ids() {
        scaler.track(id, 2.0, 256 * MIB);
    }
    for step in 0..steps {
        for id in ids() {
            scaler.observe(id, adversarial_sample(&mut rng, step, id.as_u64()));
        }
        if step.is_multiple_of(31) {
            scaler.on_oom(ids()[0], 256 * MIB);
        }
        let updates = scaler.recommend();
        writeln!(stream, "step {step}: {updates:?}").expect("write to string");
        all.extend(updates);
    }
    (stream, all)
}

#[test]
fn same_seed_decision_streams_are_byte_identical() {
    for ((name, mut a), (_, mut b)) in scalers().into_iter().zip(scalers()) {
        let (stream_a, _) = drive(a.as_mut(), 0xE5C4A, 120);
        let (stream_b, _) = drive(b.as_mut(), 0xE5C4A, 120);
        assert_eq!(
            stream_a, stream_b,
            "{name}: decision stream must be a pure function of the trace"
        );
        assert!(!stream_a.is_empty());
    }
}

#[test]
fn limits_stay_within_floor_and_capacity() {
    for (name, mut s) in scalers() {
        let (_, updates) = drive(s.as_mut(), 7, 200);
        assert!(
            !updates.is_empty(),
            "{name}: the adversarial trace must provoke at least one decision"
        );
        for u in &updates {
            if let Some(cpu) = u.cpu_limit_cores {
                assert!(
                    cpu > 0.0 && cpu <= CAPACITY_CORES,
                    "{name}: cpu limit {cpu} outside (0, {CAPACITY_CORES}]"
                );
            }
            if let Some(mem) = u.mem_limit_bytes {
                assert!(
                    mem > 0 && mem <= CAPACITY_BYTES,
                    "{name}: mem limit {mem} outside (0, {CAPACITY_BYTES}]"
                );
            }
        }
    }
}

#[test]
fn adversarial_traces_never_produce_nan_inf_or_negative_quotas() {
    for (name, mut s) in scalers() {
        for seed in [1u64, 42, 0xDEAD] {
            let (_, updates) = drive(s.as_mut(), seed, 150);
            for u in updates {
                if let Some(cpu) = u.cpu_limit_cores {
                    assert!(
                        cpu.is_finite() && cpu > 0.0,
                        "{name}: quota {cpu} is NaN/inf/non-positive"
                    );
                }
                if let Some(mem) = u.mem_limit_bytes {
                    assert!(mem > 0, "{name}: zero memory limit");
                }
                assert!(
                    u.container.as_u64() < N_CONTAINERS,
                    "{name}: update for unknown container {}",
                    u.container
                );
            }
        }
    }
}

#[test]
fn quiescence_is_idempotent() {
    // Flat mid-range usage against seeded limits: every scaler must
    // converge to silence instead of re-emitting the same limits. The
    // settle phase outlasts Autopilot's slowest histogram arm (600-sample
    // half-life) — its profile seed legitimately takes thousands of
    // samples to decay out of the percentiles.
    let flat = UsageSample {
        cpu_cores: 1.0,
        mem_bytes: 128 * MIB,
    };
    const ROUNDS: usize = 3000;
    const TAIL: usize = 100;
    for (name, mut s) in scalers() {
        for id in ids() {
            s.track(id, 2.0, 256 * MIB);
        }
        let mut tail_updates = 0;
        for round in 0..ROUNDS {
            for id in ids() {
                s.observe(id, flat);
            }
            let updates = s.recommend();
            if round >= ROUNDS - TAIL {
                tail_updates += updates.len();
            }
        }
        assert_eq!(
            tail_updates,
            0,
            "{name}: still churning under flat usage after {} rounds",
            ROUNDS - TAIL
        );
    }
}

#[test]
fn forgotten_containers_stay_forgotten() {
    let busy = UsageSample {
        cpu_cores: 6.0,
        mem_bytes: 1024 * MIB,
    };
    for (name, mut s) in scalers() {
        for id in ids() {
            s.track(id, 0.5, 64 * MIB);
        }
        // Saturate so every scaler has pending pressure, then tear down.
        for _ in 0..40 {
            for id in ids() {
                s.observe(id, busy);
            }
            s.recommend();
        }
        let dead = ids()[1];
        s.forget(dead);
        s.on_oom(ids()[0], 64 * MIB);
        for _ in 0..40 {
            for id in ids() {
                if id != dead {
                    s.observe(id, busy);
                }
            }
            for u in s.recommend() {
                assert_ne!(
                    u.container, dead,
                    "{name}: emitted an update for a torn-down container"
                );
            }
        }
    }
}

#[test]
fn pool_is_conserved_through_the_microsim() {
    let policies = [
        Policy::static_1_5x(),
        Policy::autopilot_default(),
        Policy::Vpa(VpaConfig::default()),
        Policy::tiny_default(),
        Policy::arc_v_default(),
    ];
    let base = MicroSimConfig::new(
        teastore(),
        WorkloadKind::Fixed { rps: 120.0 },
        Policy::static_1_5x(),
        11,
    )
    .with_duration(SimDuration::from_secs(8));
    let profiles = profile_run(&base);
    let pool_cores = (base.worker_nodes * base.node_cores as usize) as f64;
    for policy in policies {
        let name = policy.name();
        let cfg = MicroSimConfig {
            policy,
            ..base.clone()
        };
        let m = run_with_profiles(&cfg, &profiles).metrics;
        assert!(m.latency.successes() > 0, "{name}: no requests served");
        assert!(m.throughput().is_finite() && m.throughput() > 0.0, "{name}");
        let mut samples = 0;
        for (_, cores) in m.cpu_limit_series.iter() {
            samples += 1;
            assert!(
                cores.is_finite() && cores > 0.0 && cores <= pool_cores,
                "{name}: aggregate cpu limit {cores} outside (0, {pool_cores}] cores"
            );
        }
        assert!(samples > 0, "{name}: no limit telemetry recorded");
        for (_, mib) in m.mem_limit_series.iter() {
            assert!(
                mib.is_finite() && mib > 0.0,
                "{name}: aggregate mem limit {mib} MiB invalid"
            );
        }
        for p in [50.0, 99.0] {
            assert!(m.slack.cpu_p(p) >= 0.0, "{name}: negative cpu slack");
            assert!(m.slack.mem_p(p) >= 0.0, "{name}: negative mem slack");
        }
    }
}
