//! Memory-path edge tests, asserted through the §VI trace events: the
//! reclamation `limit == usage + δ` boundary, a grant that lands on
//! exactly-zero pool headroom, reconciliation of a duplicated OOM
//! (which must not double-count pool bytes), and the
//! sweep-credits-before-retry ordering of the reclaim-then-grant path.
//!
//! Each test runs the real `Controller<TraceRecorder>` (and, where the
//! node side matters, a real `Cluster` + `Agent`) and then reads the
//! recorded event stream — the same stream `trace_dump` exposes — so
//! the assertions hold the *observable* story to the books, not just
//! the books to themselves.

use escra::cluster::{AppId, Cluster, ContainerId, ContainerSpec, NodeId, NodeSpec};
use escra::core::{Agent, Controller, EscraConfig, ToController, TraceRecorder};
use escra::metrics::trace::TraceEventKind;
use escra::simcore::time::SimTime;

const MIB: u64 = 1 << 20;
const APP: AppId = AppId::new(0);
const NODE: NodeId = NodeId::new(0);

fn recorder() -> TraceRecorder {
    TraceRecorder::with_capacity(256)
}

fn one_node_cluster() -> Cluster {
    Cluster::new(vec![NodeSpec {
        cores: 8,
        mem_bytes: 8 << 30,
    }])
}

/// Deploys a container with a fixed base usage and memory limit and
/// runs the cluster past cold start.
fn deploy(cluster: &mut Cluster, name: &str, base: u64, limit: u64) -> ContainerId {
    cluster
        .deploy(
            ContainerSpec::new(name, APP)
                .with_base_mem(base)
                .with_mem_limit(limit),
            SimTime::ZERO,
        )
        .expect("deploy")
}

/// §IV-C sweep boundary: a container sitting at `limit == usage + δ`
/// exactly is NOT shrunk; one byte of extra slack above δ is. No shrink
/// ever raises a limit.
#[test]
fn reclaim_sweep_respects_delta_edge_and_never_grows() {
    let cfg = EscraConfig::default();
    let delta = cfg.delta_bytes; // 50 MiB default
    let mut cluster = one_node_cluster();
    // `at_edge`: limit - usage == δ exactly. `slack`: δ + 16 MiB over.
    let at_edge = deploy(&mut cluster, "edge", 46 * MIB, 46 * MIB + delta);
    let slack = deploy(&mut cluster, "slack", 30 * MIB, 96 * MIB);
    let start = SimTime::from_millis(2_500);
    cluster.tick(start);

    let agent = Agent::new(NODE);
    let mut rec = recorder();
    let entries = agent.reclaim_sweep_traced(start, &mut cluster, delta, &mut rec);

    // Exactly one shrink: the slack container, down to usage + δ.
    assert_eq!(entries.len(), 1);
    assert_eq!(entries[0].container, slack);
    assert_eq!(entries[0].new_limit_bytes, 30 * MIB + delta);
    assert_eq!(entries[0].psi_bytes, 96 * MIB - (30 * MIB + delta));
    let shrinks: Vec<_> = rec
        .iter()
        .filter_map(|e| match e.kind {
            TraceEventKind::ReclaimShrink {
                container,
                new_limit_bytes,
                psi_bytes,
            } => Some((container, new_limit_bytes, psi_bytes)),
            _ => None,
        })
        .collect();
    assert_eq!(
        shrinks,
        vec![(
            slack.as_u64(),
            30 * MIB + delta,
            96 * MIB - (30 * MIB + delta)
        )]
    );
    // The edge container was left alone — by the books and the trace.
    assert_eq!(
        cluster.container(at_edge).unwrap().mem.limit_bytes(),
        46 * MIB + delta
    );
    assert!(!shrinks.iter().any(|(c, ..)| *c == at_edge.as_u64()));
    // No-grow: every shrink strictly reduced the limit (ψ > 0).
    assert!(shrinks.iter().all(|(_, _, psi)| *psi > 0));
}

/// A grant that consumes the pool's last unallocated byte is still a
/// grant; the very next OOM flips to GrantDenied + ReclaimSweep.
#[test]
fn grant_on_exactly_zero_headroom_then_denied() {
    let cfg = EscraConfig::default();
    // Pool = initial limit + exactly one 64 MiB shortfall of headroom.
    let mut ctl = Controller::with_sink(cfg, recorder());
    ctl.register_app(APP, 8.0, 96 * MIB + 64 * MIB);
    let c = ContainerId::new(0);
    ctl.register_container(c, APP, NODE, 1.0, 96 * MIB)
        .expect("register");
    let pool = ctl.allocator().app_pool(APP).unwrap();
    assert_eq!(pool.unallocated_mem_bytes(), 64 * MIB);

    let t = SimTime::from_millis(100);
    let actions = ctl.handle(
        t,
        ToController::OomEvent {
            container: c,
            shortfall_bytes: 64 * MIB,
            current_limit_bytes: 96 * MIB,
        },
    );
    assert_eq!(actions.len(), 1);
    // Granted to the last byte: limit 160 MiB, headroom now zero.
    assert_eq!(ctl.allocator().mem_limit_of(c), Some(160 * MIB));
    assert_eq!(
        ctl.allocator()
            .app_pool(APP)
            .unwrap()
            .unallocated_mem_bytes(),
        0
    );

    let t2 = SimTime::from_millis(200);
    let actions = ctl.handle(
        t2,
        ToController::OomEvent {
            container: c,
            shortfall_bytes: 8 * MIB,
            current_limit_bytes: 160 * MIB,
        },
    );
    // Denied: the answer is a cluster-wide sweep, not a grant, and the
    // tracked limit did not move.
    assert!(!actions.is_empty());
    assert_eq!(ctl.allocator().mem_limit_of(c), Some(160 * MIB));

    let kinds: Vec<&'static str> = ctl.sink().iter().map(|e| e.kind.label()).collect();
    assert_eq!(
        kinds,
        vec![
            "oom_trap",
            "grant_issued",
            "oom_trap",
            "grant_denied",
            "reclaim_sweep"
        ]
    );
}

/// Grant accounting never double-counts: Σ of the per-grant limit
/// deltas visible in the trace equals the pool's allocated-bytes delta,
/// and a GrantReconciled (duplicated OOM reporting a stale limit)
/// moves zero pool bytes.
#[test]
fn grant_deltas_match_pool_and_reconcile_is_free() {
    let cfg = EscraConfig::default();
    let mut ctl = Controller::with_sink(cfg, recorder());
    ctl.register_app(APP, 8.0, 1024 * MIB);
    let c0 = ContainerId::new(0);
    let c1 = ContainerId::new(1);
    for c in [c0, c1] {
        ctl.register_container(c, APP, NODE, 1.0, 96 * MIB)
            .expect("register");
    }
    let allocated_before = ctl.allocator().app_pool(APP).unwrap().allocated_mem_bytes();

    let t = SimTime::from_millis(100);
    // Real OOM on c0 (shortfall below the 32 MiB grant block → block-
    // sized grant), then a *duplicate* of the same OOM still reporting
    // the old 96 MiB limit, then a real OOM on c1.
    let oom = |container, current| ToController::OomEvent {
        container,
        shortfall_bytes: 8 * MIB,
        current_limit_bytes: current,
    };
    ctl.handle(t, oom(c0, 96 * MIB));
    let allocated_mid = ctl.allocator().app_pool(APP).unwrap().allocated_mem_bytes();
    ctl.handle(t, oom(c0, 96 * MIB)); // duplicate → reconcile
    assert_eq!(
        ctl.allocator().app_pool(APP).unwrap().allocated_mem_bytes(),
        allocated_mid,
        "reconcile must not touch the pool"
    );
    ctl.handle(t, oom(c1, 96 * MIB));
    let allocated_after = ctl.allocator().app_pool(APP).unwrap().allocated_mem_bytes();

    // Replay the trace against a limits ledger: each GrantIssued's
    // delta over the previously known limit, summed, must equal the
    // pool movement; GrantReconciled re-sends a known limit (delta 0).
    let mut limits =
        std::collections::BTreeMap::from([(c0.as_u64(), 96 * MIB), (c1.as_u64(), 96 * MIB)]);
    let mut granted_sum = 0u64;
    let mut reconciles = 0u32;
    for e in ctl.sink().iter() {
        match e.kind {
            TraceEventKind::GrantIssued {
                container,
                new_limit_bytes,
            } => {
                let prev = limits.insert(container, new_limit_bytes).expect("known");
                assert!(new_limit_bytes > prev, "grants only grow the limit");
                granted_sum += new_limit_bytes - prev;
            }
            TraceEventKind::GrantReconciled {
                container,
                tracked_limit_bytes,
            } => {
                assert_eq!(limits[&container], tracked_limit_bytes);
                reconciles += 1;
            }
            _ => {}
        }
    }
    assert_eq!(reconciles, 1);
    assert_eq!(granted_sum, allocated_after - allocated_before);
    assert_eq!(granted_sum, 2 * 32 * MIB); // two block-sized grants
}

/// Abandon-then-ack audit: when a grant exhausts `grant_max_retries`
/// the pool headroom it reserved is settled exactly once — the granted
/// bytes stay on the books (the agent may well have applied a send
/// whose ack was lost, so forgetting them could double-spend the pool)
/// and the next OOM reconciles the limit. A straggler ack arriving
/// *after* the abandonment must not move the pool and must not emit a
/// second grant lifecycle event.
#[test]
fn abandoned_grant_settles_pool_exactly_once_despite_straggler_ack() {
    let cfg = EscraConfig::default();
    let max_retries = cfg.grant_max_retries;
    let mut ctl = Controller::with_sink(cfg, recorder());
    ctl.register_app(APP, 8.0, 1024 * MIB);
    let c = ContainerId::new(0);
    ctl.register_container(c, APP, NODE, 1.0, 96 * MIB)
        .expect("register");
    let allocated_before = ctl.allocator().app_pool(APP).unwrap().allocated_mem_bytes();

    // OOM → 32 MiB block grant; the SetMemLimit is never acked.
    let t = SimTime::from_millis(100);
    let actions = ctl.handle(
        t,
        ToController::OomEvent {
            container: c,
            shortfall_bytes: 8 * MIB,
            current_limit_bytes: 96 * MIB,
        },
    );
    assert_eq!(actions.len(), 1);
    let allocated_after_grant = ctl.allocator().app_pool(APP).unwrap().allocated_mem_bytes();
    assert_eq!(allocated_after_grant - allocated_before, 32 * MIB);

    // Let the retry timer run dry: max_retries re-sends, then abandon.
    let mut last_seq = None;
    for step in 1..(max_retries as u64 + 3) {
        let retries = ctl.tick(SimTime::from_millis(100 + 600 * step));
        for a in &retries {
            if let escra::core::Action::Agent {
                cmd: escra::core::ToAgent::SetMemLimit { seq, .. },
                ..
            } = a
            {
                last_seq = Some(*seq);
            }
        }
    }
    assert_eq!(ctl.pending_grant_count(), 0);
    assert_eq!(ctl.stats().grants_abandoned, 1);
    assert_eq!(ctl.stats().grant_retries, max_retries as u64);
    // Abandonment settles nothing twice: the granted bytes are still
    // allocated exactly once.
    assert_eq!(
        ctl.allocator().app_pool(APP).unwrap().allocated_mem_bytes(),
        allocated_after_grant
    );

    // The straggler: the agent's ack of the last re-send finally lands,
    // after the grant was written off. It must not credit or debit the
    // pool, must not resurrect or re-clear a pending grant, and must
    // not add a grant_acked to the story.
    let straggler_seq = last_seq.expect("at least one retry was sent");
    ctl.handle(
        SimTime::from_secs(10),
        ToController::LimitAck {
            container: c,
            seq: straggler_seq,
        },
    );
    assert_eq!(ctl.pending_grant_count(), 0);
    assert_eq!(
        ctl.allocator().app_pool(APP).unwrap().allocated_mem_bytes(),
        allocated_after_grant,
        "a straggler ack after abandonment must not move the pool"
    );
    assert_eq!(ctl.allocator().tracked_mem_sum(APP), 96 * MIB + 32 * MIB);

    // The next OOM from the (still-96 MiB-limited) container reconciles
    // the tracked 128 MiB limit instead of granting again.
    ctl.handle(
        SimTime::from_secs(11),
        ToController::OomEvent {
            container: c,
            shortfall_bytes: 8 * MIB,
            current_limit_bytes: 96 * MIB,
        },
    );
    assert_eq!(
        ctl.allocator().app_pool(APP).unwrap().allocated_mem_bytes(),
        allocated_after_grant,
        "reconciliation re-sends the tracked limit without pool movement"
    );

    // The observable story, in order: one grant lifecycle that ends in
    // abandonment (no grant_acked anywhere), then the reconcile.
    let kinds: Vec<&'static str> = ctl.sink().iter().map(|e| e.kind.label()).collect();
    let mut expected = vec!["oom_trap", "grant_issued"];
    expected.extend(std::iter::repeat_n("grant_retried", max_retries as usize));
    expected.extend(["grant_abandoned", "oom_trap", "grant_reconciled"]);
    assert_eq!(kinds, expected);
}

/// The reclaim-then-grant path: every ReclaimApplied credit lands in
/// the trace (and the pool) before the pending OOM's retry outcome,
/// and the retry grant spends no more than headroom + Σψ.
#[test]
fn sibling_reclaim_credits_pool_before_retry() {
    let cfg = EscraConfig::default();
    let delta = cfg.delta_bytes;
    let mut cluster = one_node_cluster();
    // `hungry` OOMs; `donor` holds 36 MiB of reclaimable slack.
    let hungry = deploy(&mut cluster, "hungry", 60 * MIB, 96 * MIB);
    let donor = deploy(&mut cluster, "donor", 10 * MIB, 96 * MIB);
    let start = SimTime::from_millis(2_500);
    cluster.tick(start);

    let mut ctl = Controller::with_sink(cfg.clone(), recorder());
    ctl.register_app(APP, 8.0, 200 * MIB); // 8 MiB headroom after the two 96s
    for c in [hungry, donor] {
        ctl.register_container(c, APP, NODE, 1.0, 96 * MIB)
            .expect("register");
    }
    let pool = ctl.allocator().app_pool(APP).unwrap();
    assert_eq!(pool.unallocated_mem_bytes(), 8 * MIB);

    // 40 MiB shortfall > 8 MiB headroom → denied, sweep requested.
    let t = SimTime::from_millis(2_600);
    let sweep_actions = ctl.handle(
        t,
        ToController::OomEvent {
            container: hungry,
            shortfall_bytes: 40 * MIB,
            current_limit_bytes: 96 * MIB,
        },
    );
    assert!(!sweep_actions.is_empty(), "denied OOM must launch a sweep");

    // The node runs the sweep: donor shrinks to usage + δ = 60 MiB
    // (ψ = 36 MiB); hungry (60 MiB used, 96 limit) is within δ — kept.
    let agent = Agent::new(NODE);
    let entries = agent.reclaim_sweep(&mut cluster, delta);
    assert_eq!(entries.len(), 1);
    assert_eq!(entries[0].container, donor);
    let psi = entries[0].psi_bytes;
    assert_eq!(psi, 96 * MIB - (10 * MIB + delta));

    let retry_actions = ctl.on_reclaim_report(t, &entries);
    // ψ + headroom (44 MiB) covers the 40 MiB retry: grant, no kill.
    assert_eq!(ctl.allocator().mem_limit_of(hungry), Some(136 * MIB));
    assert_eq!(ctl.allocator().mem_limit_of(donor), Some(60 * MIB));
    assert!(retry_actions
        .iter()
        .all(|a| !matches!(a, escra::core::Action::KillContainer(_))));

    // Trace ordering: trap → denied → sweep → every credit → the grant.
    let kinds: Vec<&'static str> = ctl.sink().iter().map(|e| e.kind.label()).collect();
    assert_eq!(
        kinds,
        vec![
            "oom_trap",
            "grant_denied",
            "reclaim_sweep",
            "reclaim_applied",
            "grant_issued"
        ]
    );
    // The grant spent ψ + part of the old headroom and nothing more:
    // allocated moved by (grant 40 MiB) − (ψ 36 MiB) = +4 MiB.
    assert_eq!(
        ctl.allocator().app_pool(APP).unwrap().allocated_mem_bytes(),
        192 * MIB + 40 * MIB - psi
    );
}
