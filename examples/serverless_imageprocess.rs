//! OpenWhisk vs OpenWhisk + Escra on the ImageProcess serverless
//! application (paper §VI-F): one invocation every 0.8 s, pods created
//! on demand with cold starts, warm pods reclaimed by Escra while idle.
//!
//! ```text
//! cargo run --release --example serverless_imageprocess
//! ```

use escra::core::EscraConfig;
use escra::harness::serverless_sim::{run_serverless, ServerlessApp, ServerlessConfig};
use escra::metrics::Table;
use escra::workloads::image_process;

fn main() {
    let mut table = Table::new(vec![
        "config",
        "mean lat(ms)",
        "p99 lat(ms)",
        "mean cpu limit(cores)",
        "mean mem limit(MiB)",
        "peak pods",
    ]);
    for escra in [false, true] {
        let cfg = ServerlessConfig {
            app: ServerlessApp::ImageProcess { iterations: 1 },
            ..ServerlessConfig::image_process(escra.then(EscraConfig::default), 99)
        };
        println!(
            "running one 10-minute ImageProcess iteration ({}) ...",
            if escra {
                "escra-openwhisk"
            } else {
                "openwhisk"
            }
        );
        let out = run_serverless(&cfg, &image_process());
        let m = &out.metrics;
        table.row(vec![
            m.policy.clone(),
            format!("{:.0}", m.latency.mean_ms()),
            format!("{:.0}", m.latency.p(99.0)),
            format!("{:.2}", m.cpu_limit_series.mean()),
            format!("{:.0}", m.mem_limit_series.mean()),
            format!("{}", out.peak_pods),
        ]);
    }
    println!("\n{}", table.render());
    println!("Escra treats the OpenWhisk namespace as one Distributed Container:");
    println!("idle warm pods shrink toward zero while busy pods are right-sized,");
    println!("cutting the aggregate reservation without hurting latency (§VI-G).");
}
