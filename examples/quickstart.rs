//! Quickstart: deploy a small application under Escra management and
//! watch fine-grained allocation do its thing.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use escra::harness::{run, MicroSimConfig, Policy};
use escra::simcore::time::SimDuration;
use escra::workloads::{teastore, WorkloadKind};

fn main() {
    // Teastore: 7 containers, a 12-core / 2.5 GiB Distributed Container.
    let app = teastore();
    println!(
        "deploying {} ({} containers, Ω = {} cores, {} MiB global memory)",
        app.name,
        app.container_count(),
        app.global_cpu_cores,
        app.global_mem_mib
    );

    let cfg = MicroSimConfig::new(
        app,
        WorkloadKind::Fixed { rps: 300.0 },
        Policy::escra_default(),
        42,
    )
    .with_duration(SimDuration::from_secs(30));

    let out = run(&cfg);
    let m = &out.metrics;
    println!("\nafter 30 s at 300 req/s under Escra:");
    println!("  throughput        : {:.1} req/s", m.throughput());
    println!("  median latency    : {:.0} ms", m.latency.p(50.0));
    println!("  99.9%ile latency  : {:.0} ms", m.latency.p(99.9));
    println!(
        "  median CPU slack  : {:.2} cores/container",
        m.slack.cpu_p(50.0)
    );
    println!(
        "  median mem slack  : {:.0} MiB/container",
        m.slack.mem_p(50.0)
    );
    println!(
        "  OOM kills         : {} (Escra traps OOMs before the kernel kills)",
        m.oom_kills
    );

    let stats = out.controller_stats.expect("escra run");
    println!("\ncontroller activity:");
    println!(
        "  telemetry ingested: {} per-period reports",
        stats.cpu_stats_ingested
    );
    println!("  quota scale-ups   : {}", stats.scale_ups);
    println!("  quota scale-downs : {}", stats.scale_downs);
    println!(
        "  reclamation sweeps: {} (every 5 s, δ = 50 MiB)",
        stats.reclaim_sweeps
    );
    println!(
        "  memory reclaimed  : {} MiB returned to the pool",
        stats.reclaimed_bytes / (1024 * 1024)
    );
    let net = out.network.expect("escra run");
    println!(
        "  control-plane load: {:.2} Mbps peak / {:.2} Mbps mean",
        net.peak_mbps(),
        net.mean_mbps()
    );
}
