//! The Distributed Container abstraction up close: two containers of one
//! tenant on *different nodes* share a global CPU limit at runtime — the
//! idle one is scaled down and the busy one takes over its allocation,
//! which admission-time Resource Quotas cannot do (paper §III).
//!
//! ```text
//! cargo run --release --example distributed_container
//! ```

use escra::cfs::MIB;
use escra::cluster::{AppId, Cluster, ContainerSpec, NodeSpec};
use escra::core::telemetry::ToController;
use escra::core::{deploy_app, Action, Agent, AppConfig, Controller, EscraConfig};
use escra::simcore::time::{SimDuration, SimTime};

fn main() {
    let cfg = EscraConfig::default();
    // Two single-core-ish workers; the app may use 2 cores in aggregate.
    let mut cluster = Cluster::new(vec![
        NodeSpec {
            cores: 4,
            mem_bytes: 8 << 30,
        },
        NodeSpec {
            cores: 4,
            mem_bytes: 8 << 30,
        },
    ]);
    let mut controller = Controller::new(cfg.clone());
    let app = AppConfig {
        app: AppId::new(0),
        name: "two-node-tenant".into(),
        global_cpu_cores: 2.0,
        global_mem_bytes: 1024 * MIB,
        containers: vec![
            ContainerSpec::new("busy", AppId::new(0)).with_restart_delay(SimDuration::ZERO),
            ContainerSpec::new("idle", AppId::new(0)).with_restart_delay(SimDuration::ZERO),
        ],
    };
    let (ids, actions) =
        deploy_app(&cfg, &app, &mut cluster, &mut controller, SimTime::ZERO).expect("deploy");
    let (busy, idle) = (ids[0], ids[1]);
    let mut agents: Vec<Agent> = cluster.nodes().iter().map(|n| Agent::new(n.id())).collect();
    let mut apply = |cluster: &mut Cluster, actions: Vec<Action>| {
        for a in actions {
            if let Action::Agent { node, cmd } = a {
                agents[node.as_u64() as usize].apply(cluster, cmd);
            }
        }
    };
    apply(&mut cluster, actions);
    cluster.tick(SimTime::ZERO);

    println!(
        "deployed: busy on {}, idle on {} — each starts with {} cores (Ω/n)",
        cluster.container(busy).unwrap().node(),
        cluster.container(idle).unwrap().node(),
        cluster.container(busy).unwrap().cpu.quota_cores()
    );

    // Drive 30 CFS periods: `busy` wants 1.8 cores, `idle` wants 0.05.
    let period = cfg.report_period;
    let period_us = period.as_micros() as f64;
    let mut now = SimTime::ZERO;
    for step in 0..30 {
        now += period;
        for (cid, demand_cores) in [(busy, 1.8), (idle, 0.05)] {
            let c = cluster.container_mut(cid).expect("container");
            let want = demand_cores * period_us;
            let got = c.cpu.consume(want);
            if got + 1e-9 < want {
                c.cpu.mark_throttled();
            }
            let stats = c.cpu.end_period();
            let actions = controller.handle(
                now,
                ToController::CpuStats {
                    container: cid,
                    stats,
                },
            );
            apply(&mut cluster, actions);
        }
        if step % 5 == 4 {
            let q_busy = cluster.container(busy).unwrap().cpu.quota_cores();
            let q_idle = cluster.container(idle).unwrap().cpu.quota_cores();
            println!(
                "t={:>4}ms  busy quota {:.2} cores | idle quota {:.2} cores | Σ = {:.2} ≤ Ω = 2.0",
                now.as_millis(),
                q_busy,
                q_idle,
                q_busy + q_idle
            );
        }
    }
    let pool = controller.allocator().app_pool(AppId::new(0)).expect("app");
    println!(
        "\nfinal pool state: {:.2} cores allocated, {:.2} unallocated — the busy",
        pool.allocated_cpu_cores(),
        pool.unallocated_cpu_cores()
    );
    println!("container crossed hosts' worth of quota without any redeploy, while the");
    println!("aggregate never exceeded the Distributed Container limit.");
}
