//! HipsterShop under the paper's Burst workload (50 req/s with 10 s
//! bursts of λ = 600 every 20 s) — the scenario where event-driven
//! allocation shines. Compares Escra with Static-1.5× and Autopilot.
//!
//! ```text
//! cargo run --release --example microservice_burst
//! ```

use escra::harness::{profile_run, run_with_profiles, MicroSimConfig, Policy};
use escra::metrics::{Comparison, Table};
use escra::simcore::time::SimDuration;
use escra::workloads::{hipster_shop, WorkloadKind};

fn main() {
    let base = MicroSimConfig::new(
        hipster_shop(),
        WorkloadKind::paper_burst(),
        Policy::static_1_5x(),
        2022,
    )
    .with_duration(SimDuration::from_secs(60));

    println!("profiling HipsterShop (the way an operator would)...");
    let profiles = profile_run(&base);

    let mut runs = Vec::new();
    for policy in [
        Policy::static_1_5x(),
        Policy::autopilot_default(),
        Policy::escra_default(),
    ] {
        println!("running {} ...", policy.name());
        let cfg = MicroSimConfig {
            policy,
            ..base.clone()
        };
        runs.push(run_with_profiles(&cfg, &profiles).metrics);
    }

    let mut table = Table::new(vec![
        "policy",
        "tput(req/s)",
        "p50(ms)",
        "p99.9(ms)",
        "cpu slack p50",
        "mem slack p50(MiB)",
        "OOM kills",
    ]);
    for m in &runs {
        table.row(vec![
            m.policy.clone(),
            format!("{:.1}", m.throughput()),
            format!("{:.0}", m.latency.p(50.0)),
            format!("{:.0}", m.latency.p(99.9)),
            format!("{:.2}", m.slack.cpu_p(50.0)),
            format!("{:.0}", m.slack.mem_p(50.0)),
            format!("{}", m.oom_kills),
        ]);
    }
    println!(
        "\nHipsterShop x Burst, 60 s measured:\n\n{}",
        table.render()
    );

    let vs_static = Comparison::between(&runs[0], &runs[2]);
    let vs_autopilot = Comparison::between(&runs[1], &runs[2]);
    println!(
        "Escra vs static : {:+.1}% latency, {:+.1}% throughput, {:+.1}% median CPU slack",
        vs_static.latency_decrease_pct,
        vs_static.throughput_increase_pct,
        vs_static.cpu_slack_p50_reduction_pct
    );
    println!(
        "Escra vs autopilot: {:+.1}% latency, {:+.1}% throughput, {:+.1}% median CPU slack",
        vs_autopilot.latency_decrease_pct,
        vs_autopilot.throughput_increase_pct,
        vs_autopilot.cpu_slack_p50_reduction_pct
    );
}
