#!/usr/bin/env bash
# The repo's CI gate: build, full test suite, lints, formatting.
# Run before every commit; everything must pass with zero warnings.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release

echo "== tests (root package tier-1) =="
cargo test -q

echo "== tests (workspace) =="
cargo test -q --workspace

echo "== bench smoke (controller ingest vs committed baseline) =="
# One short overhead_controller round: validates the batched ingest path
# end to end and fails on a >20% ingest-rate regression (or a lost 2x
# speedup over the pre-batching baseline) vs BENCH_controller.json.
cargo run -q -p escra-bench --release --bin overhead_controller -- --smoke --check

echo "== clippy (deny warnings) =="
cargo clippy --all-targets -- -D warnings

echo "== rustfmt =="
cargo fmt --check

echo "ALL CHECKS PASSED"
