#!/usr/bin/env bash
# The repo's CI gate: build, full test suite, lints, formatting.
# Run before every commit; everything must pass with zero warnings.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release

echo "== tests (root package tier-1) =="
cargo test -q

echo "== tests (workspace) =="
cargo test -q --workspace

echo "== clippy (deny warnings) =="
cargo clippy --all-targets -- -D warnings

echo "== rustfmt =="
cargo fmt --check

echo "ALL CHECKS PASSED"
