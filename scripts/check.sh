#!/usr/bin/env bash
# The repo's CI gate: build, full test suite, lints, formatting.
# Run before every commit; everything must pass with zero warnings.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release

echo "== tests (root package tier-1) =="
cargo test -q

echo "== tests (workspace) =="
cargo test -q --workspace

echo "== bench smoke (controller ingest vs committed baseline) =="
# One short overhead_controller round: validates the per-message,
# batched, columnar and sharded ingest paths end to end — asserting the
# columnar and forced-scalar-columnar decisions are identical to the
# row paths — and fails on a >20% ingest-rate regression (or a lost 2x
# speedup over the pre-batching baseline, or a sharded 4-thread scaling
# factor below 2.5x) vs BENCH_controller.json. The JSON records which
# kernel (avx2/scalar) the auto dispatch took.
cargo run -q -p escra-bench --release --bin overhead_controller -- --columnar --smoke --check

echo "== bench smoke (columnar scalar fallback via ESCRA_FORCE_SCALAR) =="
# The same gate with the env knob forcing the scalar kernel even on
# SIMD-capable hosts: the recorded active path must be "scalar" and all
# decision-identity assertions must still hold.
forced_out=$(ESCRA_FORCE_SCALAR=1 cargo run -q -p escra-bench --release --bin overhead_controller -- --columnar --smoke --check)
echo "$forced_out"
echo "$forced_out" | grep -q "scalar kernel" \
    || { echo "FAIL: ESCRA_FORCE_SCALAR=1 did not select the scalar kernel"; exit 1; }

echo "== sim engine identity (serial tick vs event heap, byte-for-byte) =="
# The frozen SerialTick reference loop and the event-heap driver (with
# tick-coupled physics) must produce identical outputs on committed
# paper scenarios — the gate behind running the experiment bins on the
# event engine.
cargo run -q -p escra-bench --release --bin sim_scale -- --identity

echo "== sim scale smoke (10k nodes, 1M+ container-periods vs committed baseline) =="
# A 10k-node / 12k-container event-heap run; fails if throughput drops
# below half the committed BENCH_sim.json rate.
cargo run -q -p escra-bench --release --bin sim_scale -- --smoke --check

echo "== policy conformance (all five PeriodicScaler impls) =="
# Trait-level property suite: same-seed determinism, floor/capacity
# bounds, no NaN/inf quotas under adversarial traces, quiescence
# idempotence, forgotten containers, microsim pool conservation — for
# Static, Autopilot, VPA, tiny autoscaler and ARC-V alike.
cargo test -q --test policy_conformance

echo "== parallel sweep identity (parallel vs serial, byte-for-byte) =="
# The experiment bins run on the parallel sweep runner; --serial re-runs
# the same grid serially and fails unless the JSON dumps are identical.
# table1 covers the enlarged 5-policy matrix (tiny + ARC-V rows with the
# cost columns) on 4 workers vs the serial reference.
cargo run -q -p escra-bench --release --bin report_period_sweep -- --smoke --serial
cargo run -q -p escra-bench --release --bin table1_summary -- --smoke --serial --threads 4

echo "== baseline serverless + trace cost smoke (tiny / ARC-V / Escra) =="
# Both OpenWhisk-style apps and a trace mega-mix smoke under the
# baseline-scaler modes, with the cost-efficiency columns.
cargo run -q -p escra-bench --release --bin baseline_serverless -- --smoke

echo "== trace determinism (serial vs sharded, byte-for-byte) =="
# trace_dump replays a fixed-seed faulty scenario with every component
# recording trace events; the merged decision trace must not depend on
# the Controller's thread count.
cargo run -q -p escra-bench --release --bin trace_dump
cargo run -q -p escra-bench --release --bin trace_dump -- --threads 4
cmp target/escra-results/trace_dump_serial.trace \
    target/escra-results/trace_dump_t4.trace

echo "== trace mega smoke (10k traced apps vs committed baseline, serial-vs-t4 byte-identity) =="
# The trace-driven mega-scenario: 10,000 synthetic Azure-shaped apps
# (one Distributed Container each) across 16 shards with jittered
# batched telemetry. --serial re-runs the grid serially and fails unless
# the shard summaries are byte-identical; --check fails on a >2x
# throughput regression vs BENCH_trace.json. The cmp re-asserts the
# identity across separate processes (threads=1 vs threads=4 dumps).
cargo run -q -p escra-bench --release --bin trace_mega -- --smoke --check --serial --threads 1
cargo run -q -p escra-bench --release --bin trace_mega -- --smoke --threads 4
cmp target/escra-results/trace_mega_serial.shards.json \
    target/escra-results/trace_mega_t4.shards.json

echo "== model check (exhaustive, pinned state counts, mutations caught) =="
# mc_explore explores every schedule (reorder + drop + duplicate + OOM +
# timer branching) of four bounded control-plane configurations: all
# must verify clean with BFS == DFS on the exact pinned state counts,
# and the two seeded protocol mutations must each be caught with a
# replayable counterexample.
cargo run -q -p escra-bench --release --bin mc_explore -- --smoke

echo "== clippy (deny warnings) =="
cargo clippy --all-targets -- -D warnings

echo "== rustfmt =="
cargo fmt --check

echo "ALL CHECKS PASSED"
